"""Critical-path extraction and exact time attribution over span forests.

The serving layer records one span tree per query (PR 4); this module turns
those trees into the paper's Figure 9-style "where did the time go"
answers, with three properties the raw waterfall does not have:

- **Exact decomposition.**  Every span is attributed a *self* time (wall
  seconds of the root window no descendant accounts for), a *wait* time
  (its measured queueing delay, carved out of self), and an *exclusive
  virtual* time (injected fault latency charged to it but not to any
  child).  The attributions partition the trace exactly: summed over a
  trace they equal root duration + root virtual latency to float-sum
  tolerance, because self times come from a segment sweep that assigns
  each elementary time segment to exactly one span, and exclusive virtual
  telescopes (own minus children's own) to the root total by construction.
- **Critical path.**  The chain root → … → leaf obtained by repeatedly
  descending into the *dominating* child: the one whose clamped window
  ends last, with deterministic tie-breaks (subtree virtual latency, then
  canonical span order).  On a timing-stripped export all windows are
  empty, so the path degrades gracefully to "follow the virtual latency".
- **Replay stability.**  On deterministic (timing-stripped) exports every
  number in the report is a pure function of the seed — measured columns
  collapse to zero and virtual/structural columns are identical across
  serial, thread, and process backends, so the rendered report is
  byte-identical for the same chaos seed (the PR 4 replay guarantee,
  extended from span skeletons to analysis output).

Malformed forests (no spans, orphaned ``parent_id``, a trace with no
root) raise :class:`repro.errors.ObsError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.obs.trace import QUERY, Span, sort_key

#: Span attribute carrying injected virtual latency (seconds, deterministic).
VIRTUAL_ATTR = "virtual_seconds"


def _own_virtual(span: Span) -> float:
    return float(span.attributes.get(VIRTUAL_ATTR, 0.0))


@dataclass(frozen=True)
class Attribution:
    """Exact time attribution for one span within its trace."""

    span: Span
    stage: str              #: service label, inherited from the nearest
                            #: service-labelled ancestor (root: span name)
    self_seconds: float     #: root-window time no descendant accounts for
    wait_seconds: float     #: measured queueing delay (carved out of self)
    virtual_seconds: float  #: exclusive injected virtual latency
    on_critical_path: bool

    @property
    def total_seconds(self) -> float:
        """Everything this span alone contributes to the trace total."""
        return self.self_seconds + self.wait_seconds + self.virtual_seconds


@dataclass(frozen=True)
class TraceAnalysis:
    """One query trace, decomposed."""

    trace_id: str
    ordinal: int
    root: Span
    attributions: Tuple[Attribution, ...]   #: canonical span order
    critical_path: Tuple[Span, ...]          #: root first

    @property
    def measured_seconds(self) -> float:
        """Measured root wall seconds (0.0 on timing-stripped exports)."""
        return self.root.duration

    @property
    def virtual_seconds(self) -> float:
        """Total injected virtual latency (the root carries the total)."""
        return _own_virtual(self.root)

    @property
    def total_seconds(self) -> float:
        """The trace's cost: measured wall time plus virtual latency."""
        return self.measured_seconds + self.virtual_seconds


class _Node:
    __slots__ = ("span", "children", "subtree_virtual", "stage")

    def __init__(self, span: Span):
        self.span = span
        self.children: List[_Node] = []
        self.subtree_virtual = 0.0
        self.stage = ""


def _build_trees(spans: Sequence[Span]) -> List[_Node]:
    """Parent-link the forest; one root node per trace, canonical order."""
    if not spans:
        raise ObsError("span forest contains no spans")
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    roots: List[_Node] = []
    for trace_id in sorted(by_trace, key=lambda t: sort_key(by_trace[t][0])):
        members = sorted(by_trace[trace_id], key=sort_key)
        nodes = {span.span_id: _Node(span) for span in members}
        trace_roots: List[_Node] = []
        for span in members:
            if not span.parent_id:
                trace_roots.append(nodes[span.span_id])
            elif span.parent_id in nodes:
                nodes[span.parent_id].children.append(nodes[span.span_id])
            else:
                raise ObsError(
                    f"trace {trace_id}: span {span.span_id} ({span.name!r}) "
                    f"references missing parent {span.parent_id}"
                )
        if not trace_roots:
            raise ObsError(f"trace {trace_id} has no root span")
        roots.extend(trace_roots)

    for root in roots:
        _fill_subtree_virtual(root)
        _fill_stages(root, root.span.name)
    return roots


def _fill_subtree_virtual(node: _Node) -> float:
    """A subtree's virtual total is the max of its own annotated total and
    the sum of its children's — the executor stamps totals on the root and
    per-stage shares below it, so ``max`` tolerates either convention."""
    total = sum(_fill_subtree_virtual(child) for child in node.children)
    node.subtree_virtual = max(_own_virtual(node.span), total)
    return node.subtree_virtual


def _fill_stages(node: _Node, inherited: str) -> None:
    """Attach each node to a *stage*: its service label, or the nearest
    service-labelled ancestor's — so attempt and section spans charge the
    service they ran inside, not a generic "attempt" bucket."""
    node.stage = node.span.service or inherited
    for child in node.children:
        _fill_stages(child, node.stage)


def _rank(node: _Node) -> Tuple[float, float, Tuple[int, str, str]]:
    """Dominance order among siblings: latest end, most virtual latency,
    then canonical span order — all deterministic under the run's seed."""
    return (node.span.end, node.subtree_virtual, sort_key(node.span))


def _sweep(
    node: _Node,
    window: Tuple[float, float],
    out: Dict[str, float],
) -> None:
    """Assign each elementary segment of ``window`` to exactly one span.

    ``window`` is the part of the parent's interval this node owns.  Child
    windows are clamped into it; segment boundaries are swept left to
    right, each segment going to the dominating covering child (recursing
    with that child's share) or to the node itself when no child covers
    it.  Every second of ``window`` lands in exactly one ``out`` bucket,
    which is what makes the decomposition exact.
    """
    lo, hi = window
    self_key = node.span.span_id
    out.setdefault(self_key, 0.0)
    clamped: List[Tuple[_Node, float, float]] = []
    for child in node.children:
        start = max(child.span.start, lo)
        end = min(child.span.end, hi)
        if end > start:
            clamped.append((child, start, end))
        else:
            # Zero-width child (timing-stripped or instantaneous): still
            # recurse so its own children get attribution entries.
            _sweep(child, (start, start), out)

    if not clamped:
        out[self_key] += hi - lo
        return

    bounds = sorted({lo, hi, *(s for _, s, _ in clamped), *(e for _, _, e in clamped)})
    shares: Dict[str, List[Tuple[float, float]]] = {}
    order: List[_Node] = []
    for left, right in zip(bounds[:-1], bounds[1:]):
        covering = [
            (child, start, end)
            for child, start, end in clamped
            if start <= left and right <= end
        ]
        if not covering:
            out[self_key] += right - left
            continue
        winner = max(covering, key=lambda item: _rank(item[0]))[0]
        key = winner.span.span_id
        if key not in shares:
            shares[key] = []
            order.append(winner)
        shares[key].append((left, right))

    for child in order:
        segments = shares[child.span.span_id]
        # Merge adjacent segments before recursing; the child sweeps each
        # owned interval independently.
        merged: List[Tuple[float, float]] = []
        for seg in segments:
            if merged and math.isclose(merged[-1][1], seg[0], abs_tol=0.0):
                merged[-1] = (merged[-1][0], seg[1])
            else:
                merged.append(seg)
        for interval in merged:
            _sweep(child, interval, out)
    # Children that never won a segment still need entries (and their own
    # descendants may carry virtual latency).
    for child, start, _ in clamped:
        if child.span.span_id not in shares:
            _sweep(child, (start, start), out)


def _critical_path(root: _Node) -> Tuple[Span, ...]:
    path = [root.span]
    node = root
    while node.children:
        node = max(node.children, key=_rank)
        path.append(node.span)
    return tuple(path)


def analyze_trace(root: _Node) -> TraceAnalysis:
    self_times: Dict[str, float] = {}
    span = root.span
    _sweep(root, (span.start, span.end), self_times)
    path = _critical_path(root)
    on_path = {s.span_id for s in path}

    attributions: List[Attribution] = []
    stack = [root]
    flat: List[_Node] = []
    while stack:
        node = stack.pop()
        flat.append(node)
        stack.extend(node.children)
    for node in sorted(flat, key=lambda n: sort_key(n.span)):
        raw_self = self_times.get(node.span.span_id, 0.0)
        wait = min(float(node.span.wait), raw_self)
        children_virtual = sum(_own_virtual(c.span) for c in node.children)
        exclusive_virtual = _own_virtual(node.span) - children_virtual
        attributions.append(
            Attribution(
                span=node.span,
                stage=node.stage,
                self_seconds=raw_self - wait,
                wait_seconds=wait,
                virtual_seconds=exclusive_virtual,
                on_critical_path=node.span.span_id in on_path,
            )
        )
    return TraceAnalysis(
        trace_id=span.trace_id,
        ordinal=span.ordinal,
        root=span,
        attributions=tuple(attributions),
        critical_path=path,
    )


def analyze_forest(spans: Sequence[Span]) -> List[TraceAnalysis]:
    """Decompose every trace in a span forest (canonical trace order).

    Raises :class:`ObsError` on an empty or structurally malformed forest.
    """
    return [analyze_trace(root) for root in _build_trees(spans)]


# -- tail attribution ---------------------------------------------------------------


@dataclass(frozen=True)
class StageShare:
    """One stage's share of attributed time over a set of traces."""

    stage: str
    self_seconds: float
    wait_seconds: float
    virtual_seconds: float
    critical_hits: int  #: traces whose critical path passes through this stage

    @property
    def total_seconds(self) -> float:
        return self.self_seconds + self.wait_seconds + self.virtual_seconds


@dataclass(frozen=True)
class TailAttribution:
    """Which stage the tail pays for: per-stage shares, overall vs tail."""

    quantile: float
    threshold_seconds: float            #: nearest-rank quantile of trace totals
    n_traces: int
    n_tail_traces: int
    overall: Tuple[StageShare, ...]     #: sorted by descending total
    tail: Tuple[StageShare, ...]        #: same, over tail traces only


def _shares(analyses: Sequence[TraceAnalysis]) -> Tuple[StageShare, ...]:
    buckets: Dict[str, List[float]] = {}
    hits: Dict[str, int] = {}
    for analysis in analyses:
        path_stages = {
            a.stage for a in analysis.attributions if a.on_critical_path
        }
        for stage in path_stages:
            hits[stage] = hits.get(stage, 0) + 1
        for attribution in analysis.attributions:
            stage = attribution.stage
            bucket = buckets.setdefault(stage, [0.0, 0.0, 0.0])
            bucket[0] += attribution.self_seconds
            bucket[1] += attribution.wait_seconds
            bucket[2] += attribution.virtual_seconds
    shares = [
        StageShare(
            stage=stage,
            self_seconds=bucket[0],
            wait_seconds=bucket[1],
            virtual_seconds=bucket[2],
            critical_hits=hits.get(stage, 0),
        )
        for stage, bucket in buckets.items()
    ]
    shares.sort(key=lambda s: (-s.total_seconds, s.stage))
    return tuple(shares)


def nearest_rank(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    if not sorted_values:
        raise ObsError("cannot take a quantile of zero traces")
    index = max(int(math.ceil(quantile * len(sorted_values))) - 1, 0)
    return sorted_values[min(index, len(sorted_values) - 1)]


def tail_attribution(
    analyses: Sequence[TraceAnalysis], quantile: float = 0.99
) -> TailAttribution:
    """Attribute overall and tail (≥ the ``quantile`` trace total) time."""
    if not analyses:
        raise ObsError("span forest contains no query traces")
    totals = sorted(a.total_seconds for a in analyses)
    threshold = nearest_rank(totals, quantile)
    tail = [a for a in analyses if a.total_seconds >= threshold]
    return TailAttribution(
        quantile=quantile,
        threshold_seconds=threshold,
        n_traces=len(analyses),
        n_tail_traces=len(tail),
        overall=_shares(analyses),
        tail=_shares(tail),
    )


# -- rendering ----------------------------------------------------------------------


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}"


def format_critical_path_report(
    spans: Sequence[Span], quantile: float = 0.99, paths: int = 3
) -> str:
    """The ``repro trace-report --critical-path`` text.

    Deterministic: on a timing-stripped export every number is a pure
    function of the run's seed, so the text is byte-identical across
    execution backends.  ``paths`` caps how many individual critical paths
    are printed (slowest traces first); the attribution tables always
    cover the whole forest.
    """
    from repro.analysis import format_table  # documented cycle; see report.py

    analyses = analyze_forest(spans)
    queries = [a for a in analyses if a.root.kind == QUERY] or analyses
    report = tail_attribution(queries, quantile=quantile)

    lines: List[str] = []
    check = math.fsum(
        attribution.total_seconds
        for analysis in queries
        for attribution in analysis.attributions
    )
    total = math.fsum(analysis.total_seconds for analysis in queries)
    lines.append(
        f"Critical-path attribution over {report.n_traces} queries "
        f"(total {_ms(total)} ms, attributed {_ms(check)} ms)"
    )
    lines.append("")

    def table(title: str, shares: Sequence[StageShare], n: int) -> str:
        rows = [
            [
                share.stage,
                _ms(share.self_seconds),
                _ms(share.wait_seconds),
                _ms(share.virtual_seconds),
                _ms(share.total_seconds),
                f"{share.critical_hits}/{n}",
            ]
            for share in shares
        ]
        return format_table(
            title,
            ["Stage", "Self (ms)", "Wait (ms)", "Virtual (ms)",
             "Total (ms)", "On path"],
            rows,
        )

    lines.append(table("Per-stage attribution (all queries)",
                       report.overall, report.n_traces))
    lines.append("")
    percent = f"p{report.quantile * 100:g}"
    lines.append(table(
        f"Tail attribution ({percent} ≥ {_ms(report.threshold_seconds)} ms, "
        f"{report.n_tail_traces} queries)",
        report.tail, report.n_tail_traces))
    lines.append("")

    slowest = sorted(
        queries, key=lambda a: (-a.total_seconds, sort_key(a.root))
    )[: max(paths, 0)]
    for analysis in slowest:
        steps = " -> ".join(
            f"{span.name}" + (f" [{span.service}]" if span.service else "")
            for span in analysis.critical_path
        )
        lines.append(
            f"query #{analysis.ordinal}  total {_ms(analysis.total_seconds)} ms"
            f"  (virtual {_ms(analysis.virtual_seconds)} ms): {steps}"
        )
    return "\n".join(lines).rstrip()
