"""Declarative SLOs, error budgets, and multi-window burn-rate alerts.

The autoscaler (PR 8) *acts* on a tail target; this module *judges* the
outcome the way a production SRE rotation would (Google SRE workbook,
ch. 5): pick objectives, account the error budget they imply, and alert
on the budget's **burn rate** over paired long/short lookbacks so a real
incident pages fast while a slow leak files a ticket.

- An :class:`SLODefinition` is either an **availability** objective
  (fraction of queries that must not fail — degraded still counts as
  served, the paper's graceful-degradation contract) or a **latency**
  objective (fraction of queries that must land under a threshold, e.g.
  e2e p99 < 2 s ⇒ target 0.99 at ``threshold=2.0``).
- Evaluation runs over :class:`~repro.obs.timeseries.RollupSnapshot`
  windows: per window, exact good/bad counts; over the horizon, the
  budget consumed as a fraction of ``(1 - target)``.
- A :class:`BurnRateAlert` fires at window ``w`` when the budget burns at
  ``>= factor`` times the sustainable rate over *both* a long and a short
  trailing window — the standard construction that makes pages both fast
  (short window catches onset) and non-flappy (long window confirms).

All arithmetic is integer counts and single-rounded float divisions over
deterministic rollups, so the SLO table in ``repro fleet-report`` is
byte-identical across backends and replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.timeseries import (
    E2E_METRIC,
    QUERIES_METRIC,
    RollupSnapshot,
    TTFP_METRIC,
)

#: SLO kinds.
AVAILABILITY = "availability"
LATENCY = "latency"


@dataclass(frozen=True)
class SLODefinition:
    """One objective: a target fraction of good events over the horizon."""

    name: str
    kind: str                 #: AVAILABILITY or LATENCY
    target: float             #: required good fraction, in (0, 1)
    metric: str = QUERIES_METRIC
    threshold: float = 0.0    #: latency bound in seconds (LATENCY kind only)

    def __post_init__(self):
        if self.kind not in (AVAILABILITY, LATENCY):
            raise ConfigurationError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError("SLO target must be in (0, 1)")
        if self.kind == LATENCY and self.threshold <= 0:
            raise ConfigurationError("latency SLOs need a positive threshold")

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad fraction, ``1 - target``."""
        return 1.0 - self.target


def default_slos(
    e2e_threshold: float = 2.5,
    ttfp_threshold: float = 0.5,
    availability_target: float = 0.999,
) -> Tuple[SLODefinition, ...]:
    """The fleet's stock objectives: availability, e2e p99, TTFP p95.

    Latency targets encode the percentile: "e2e p99 under the threshold"
    is a 0.99 target on the fraction of queries beating the threshold;
    "TTFP p95" likewise at 0.95.
    """
    return (
        SLODefinition(
            name="availability", kind=AVAILABILITY, target=availability_target,
            metric=QUERIES_METRIC,
        ),
        SLODefinition(
            name="e2e-p99", kind=LATENCY, target=0.99,
            metric=E2E_METRIC, threshold=e2e_threshold,
        ),
        SLODefinition(
            name="ttfp-p95", kind=LATENCY, target=0.95,
            metric=TTFP_METRIC, threshold=ttfp_threshold,
        ),
    )


@dataclass(frozen=True)
class WindowCompliance:
    """Exact good/bad event counts for one rollup window."""

    window: int
    good: int
    bad: int

    @property
    def total(self) -> int:
        return self.good + self.bad

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0


@dataclass(frozen=True)
class BurnRateAlert:
    """A paired long/short-lookback burn-rate alerting rule.

    Lookbacks are counted in rollup windows; the alert fires at a window
    when the budget burn rate (bad fraction ÷ budget) is at least
    ``factor`` over **both** trailing lookbacks.
    """

    name: str
    long_windows: int
    short_windows: int
    factor: float

    def __post_init__(self):
        if self.long_windows < self.short_windows or self.short_windows < 1:
            raise ConfigurationError(
                "need long_windows >= short_windows >= 1"
            )
        if self.factor <= 0:
            raise ConfigurationError("burn-rate factor must be positive")


#: Replay-scaled analogs of the SRE workbook's page/ticket pairs
#: (1h/5m @ 14.4x and 6h/30m @ 6x, in rollup-window units).
DEFAULT_ALERTS = (
    BurnRateAlert(name="page", long_windows=12, short_windows=2, factor=8.0),
    BurnRateAlert(name="ticket", long_windows=36, short_windows=6, factor=2.0),
)


@dataclass(frozen=True)
class AlertFiring:
    """One alert rule firing at one evaluation window."""

    alert: str
    window: int
    long_burn: float
    short_burn: float


@dataclass(frozen=True)
class SLOStatus:
    """One objective evaluated over a rollup horizon."""

    slo: SLODefinition
    windows: Tuple[WindowCompliance, ...]
    good: int
    bad: int
    firings: Tuple[AlertFiring, ...] = ()

    @property
    def total(self) -> int:
        return self.good + self.bad

    @property
    def compliance(self) -> float:
        """Measured good fraction (1.0 on an empty horizon: nothing failed)."""
        return self.good / self.total if self.total else 1.0

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent (can exceed 1.0)."""
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / self.slo.budget

    @property
    def met(self) -> bool:
        return self.compliance >= self.slo.target


def _availability_windows(
    snapshot: RollupSnapshot, slo: SLODefinition
) -> List[WindowCompliance]:
    good = snapshot.counter_by_window(slo.metric, status="ok")
    degraded = snapshot.counter_by_window(slo.metric, status="degraded")
    failed = snapshot.counter_by_window(slo.metric, status="failed")
    windows = sorted(set(good) | set(degraded) | set(failed))
    return [
        WindowCompliance(
            window=window,
            good=good.get(window, 0) + degraded.get(window, 0),
            bad=failed.get(window, 0),
        )
        for window in windows
    ]


def _latency_windows(
    snapshot: RollupSnapshot, slo: SLODefinition
) -> List[WindowCompliance]:
    compliance = []
    for window, panel in sorted(snapshot.panel_by_window(slo.metric).items()):
        good = sum(
            weight
            for value, weight in zip(panel.samples, panel.weights)
            if value <= slo.threshold
        )
        compliance.append(
            WindowCompliance(window=window, good=good, bad=panel.kept - good)
        )
    return compliance


def _burn_over(
    windows: Sequence[WindowCompliance], start: int, end: int, budget: float
) -> float:
    """Burn rate over trailing window indices ``(start, end]`` (inclusive)."""
    good = bad = 0
    for cell in windows:
        if start < cell.window <= end:
            good += cell.good
            bad += cell.bad
    total = good + bad
    if total == 0:
        return 0.0
    return (bad / total) / budget


def _firings(
    windows: Sequence[WindowCompliance],
    budget: float,
    alerts: Sequence[BurnRateAlert],
) -> List[AlertFiring]:
    firings = []
    if not windows:
        return firings
    for index in range(windows[0].window, windows[-1].window + 1):
        for alert in alerts:
            long_burn = _burn_over(
                windows, index - alert.long_windows, index, budget
            )
            short_burn = _burn_over(
                windows, index - alert.short_windows, index, budget
            )
            if long_burn >= alert.factor and short_burn >= alert.factor:
                firings.append(
                    AlertFiring(
                        alert=alert.name, window=index,
                        long_burn=long_burn, short_burn=short_burn,
                    )
                )
    return firings


def evaluate_slo(
    snapshot: RollupSnapshot,
    slo: SLODefinition,
    alerts: Sequence[BurnRateAlert] = DEFAULT_ALERTS,
) -> SLOStatus:
    """Evaluate one objective over a rollup snapshot's full horizon."""
    if slo.kind == AVAILABILITY:
        windows = _availability_windows(snapshot, slo)
    else:
        windows = _latency_windows(snapshot, slo)
    good = sum(cell.good for cell in windows)
    bad = sum(cell.bad for cell in windows)
    return SLOStatus(
        slo=slo,
        windows=tuple(windows),
        good=good,
        bad=bad,
        firings=tuple(_firings(windows, slo.budget, alerts)),
    )


def evaluate_slos(
    snapshot: RollupSnapshot,
    slos: Optional[Sequence[SLODefinition]] = None,
    alerts: Sequence[BurnRateAlert] = DEFAULT_ALERTS,
) -> Tuple[SLOStatus, ...]:
    """Evaluate objectives (default set when none given) with data present.

    Objectives whose metric never appears in the snapshot are skipped —
    a replay without a TTFP model should not report a vacuously-met TTFP
    SLO.
    """
    chosen = tuple(slos) if slos is not None else default_slos()
    present = set(snapshot.metrics())
    return tuple(
        evaluate_slo(snapshot, slo, alerts=alerts)
        for slo in chosen
        if slo.metric in present
    )
