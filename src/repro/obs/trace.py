"""Spans and tracers: the per-query execution tree of the serving stack.

One query produces one *trace*: a root ``query`` span, a child span per
service stage, a grandchild span per resilience retry attempt, and leaf
spans for every profiler section inside the service call.  The paper's
latency analyses (Figure 8's tail variability, Figure 9's per-component
breakdown) are projections of exactly this tree, so the serving layer
records it first-class instead of reconstructing it from scalar stats.

**Deterministic identity.**  Trace and span IDs are *seeded hashes*, never
wall-clock or random: a trace ID is a function of ``(seed, ordinal)`` and a
span ID of ``(trace_id, parent_id, name, sibling-index)``.  Two chaos runs
with the same seed therefore produce byte-identical span forests (IDs,
parentage, attributes), whichever execution backend — serial, thread pool,
forked processes, or stage-batched — happened to run them.  Only the
measured ``start``/``end`` wall times differ between runs, and the JSONL
exporter can strip those (``timing=False``) for replay comparison.

**Attribute discipline.**  ``Span.attributes`` must hold only values that
are deterministic under the run's seed (ordinals, attempt counts, breaker
states, fault kinds, virtual-latency seconds, error codes).  Measured wall
times live exclusively in ``start``/``end``/``wait`` so the deterministic
export stays byte-stable.  See ``docs/OBSERVABILITY.md``.

Spans cross process boundaries as plain picklable dataclasses: a worker
resumes a :class:`TraceContext`, records into its own :class:`Tracer`, and
ships the finished spans back inside the service response for the parent
to :meth:`~Tracer.adopt`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SiriusError, TraceError

#: Span kinds emitted by the serving stack.
QUERY = "query"      #: root span: one whole query through its plan
SERVICE = "service"  #: one service stage (ASR / classify / QA / IMM)
ATTEMPT = "attempt"  #: one resilience retry attempt (or breaker rejection)
SECTION = "section"  #: one profiler section (leaf component timing)
KERNEL = "kernel"    #: one Sirius Suite kernel execution (``repro bench``)
PARTIAL = "partial"  #: one streaming partial hypothesis (session ``partials()``)
ROUTER = "router"    #: time a query spent queued/being placed at the cluster router

_ID_BYTES = 8  # 16 hex chars — OpenTelemetry span-id width


def trace_id_for(seed: int, ordinal: int) -> str:
    """Deterministic trace ID for one query of one seeded run."""
    digest = hashlib.sha256(f"{seed}:{ordinal}:trace".encode()).hexdigest()
    return digest[: 2 * _ID_BYTES]


def span_id_for(trace_id: str, parent_id: str, name: str, index: int) -> str:
    """Deterministic span ID: a pure function of position in the tree.

    ``index`` is the 0-based count of earlier same-named siblings under the
    same parent, so repeated sections ("stemmer" called three times) stay
    distinct while remaining replay-stable.
    """
    digest = hashlib.sha256(
        f"{trace_id}:{parent_id}:{name}:{index}".encode()
    ).hexdigest()
    return digest[: 2 * _ID_BYTES]


@dataclass(frozen=True)
class TraceContext:
    """The picklable parent coordinates handed to a worker.

    Carried by :class:`~repro.serving.service.ServiceRequest` so a thread or
    forked process can resume the query's trace at the right parent span
    (see :meth:`Tracer.resume`).
    """

    seed: int
    trace_id: str
    span_id: str
    ordinal: int = 0


@dataclass
class Span:
    """One timed node of a query's execution tree.

    ``start``/``end`` are ``time.perf_counter`` readings (monotonic,
    comparable within a host — fork preserves the clock base on Linux);
    ``wait`` is the measured queueing delay before the work started, kept
    separate from service time.  Everything else is deterministic under the
    run's seed.
    """

    trace_id: str
    span_id: str
    parent_id: str            #: "" for a root span
    name: str
    kind: str = SERVICE
    service: str = ""         #: service label (e.g. "ASR") for service spans
    ordinal: int = 0          #: the owning query's stream ordinal
    start: float = 0.0
    end: float = 0.0
    wait: float = 0.0         #: measured queueing delay (seconds), 0 if none
    status: str = "ok"        #: "ok" | "error"
    error_code: str = ""      #: stable ``repro.errors`` code when failed
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Measured wall seconds between start and end (never negative)."""
        return max(self.end - self.start, 0.0)

    def __repr__(self) -> str:
        return (f"<Span {self.kind}:{self.name} {self.span_id} "
                f"{self.duration * 1000:.2f}ms {self.status}>")


def sort_key(span: Span) -> Tuple[int, str, str]:
    """The canonical export order: by query, then trace, then span ID."""
    return (span.ordinal, span.trace_id, span.span_id)


@dataclass(frozen=True)
class _RemoteParent:
    """Synthetic stack frame for a parent span living in another process."""

    trace_id: str
    span_id: str
    ordinal: int
    attributes: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Creates, nests, and collects spans with deterministic identity.

    Thread-safe: the finished-span list and the sibling counters are shared
    under one lock, while the *open-span stack* is thread-local — each
    thread nests its own spans, which is exactly the execution model of the
    serving backends.  Same-named spans opened concurrently under the same
    parent would race for sibling indices; the serving stack never does
    that (parallel branches have distinct service names, and queries have
    distinct traces), and the contract is documented rather than policed.
    """

    def __init__(self, seed: int = 0, clock=time.perf_counter):
        self.seed = seed
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        #: (trace_id, parent_id, name) -> next sibling index.
        self._counters: Dict[Tuple[str, str, str], int] = {}
        self._local = threading.local()

    # -- stack plumbing ----------------------------------------------------------

    def _stack(self) -> List[Any]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span(self) -> Optional[Any]:
        """The innermost open span on this thread (or remote parent frame)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def context(self) -> Optional[TraceContext]:
        """Picklable coordinates of the innermost open span, for workers."""
        current = self.current_span()
        if current is None:
            return None
        return TraceContext(
            seed=self.seed,
            trace_id=current.trace_id,
            span_id=current.span_id,
            ordinal=current.ordinal,
        )

    @classmethod
    def resume(cls, context: TraceContext, clock=time.perf_counter) -> "Tracer":
        """A fresh tracer whose spans nest under a remote parent span.

        Used by ``Service.__call__`` in worker threads/processes: spans
        recorded here are shipped back and adopted by the parent tracer.
        Sibling counters start at zero, which is correct because the parent
        process never creates children under the handed-off span itself.
        """
        tracer = cls(seed=context.seed, clock=clock)
        tracer._stack().append(
            _RemoteParent(
                trace_id=context.trace_id,
                span_id=context.span_id,
                ordinal=context.ordinal,
            )
        )
        return tracer

    @contextmanager
    def reenter(self, span: Span) -> Iterator[Span]:
        """Re-activate an externally managed *open* span on this thread.

        A streaming session's service span stays open across many ``feed``
        calls that may land on different pool threads; ``begin_span``/
        ``end_span`` alone cannot express that (the open-span stack is
        thread-local).  ``reenter`` pushes the span as this thread's
        innermost frame for the duration of one synchronous work bout, so
        profiler sections, partial spans, and ``annotate`` calls nest under
        it; the caller closes the span itself (sets ``end``/``status`` and
        hands it to :meth:`adopt`).  Sibling counters are shared tracer
        state, so indices stay unique across bouts and threads.
        """
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            if not stack or stack[-1] is not span:
                raise TraceError(
                    f"reenter({span.name!r}) exited with unbalanced child "
                    "spans still open on this thread"
                )
            stack.pop()

    # -- span lifecycle ----------------------------------------------------------

    def _next_index(self, trace_id: str, parent_id: str, name: str) -> int:
        key = (trace_id, parent_id, name)
        with self._lock:
            index = self._counters.get(key, 0)
            self._counters[key] = index + 1
        return index

    def begin_trace(self, ordinal: int, name: str = "query") -> Span:
        """Open the root span of a new query trace on this thread."""
        trace_id = trace_id_for(self.seed, ordinal)
        index = self._next_index(trace_id, "", name)
        span = Span(
            trace_id=trace_id,
            span_id=span_id_for(trace_id, "", name, index),
            parent_id="",
            name=name,
            kind=QUERY,
            ordinal=ordinal,
            start=self._clock(),
        )
        self._stack().append(span)
        return span

    def begin_span(
        self,
        name: str,
        kind: str = SERVICE,
        service: str = "",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a child of this thread's innermost span."""
        parent = self.current_span()
        if parent is None:
            raise TraceError(
                f"begin_span({name!r}) with no open trace on this thread; "
                "open a root span first (Tracer.begin_trace/trace) or resume "
                "a TraceContext"
            )
        index = self._next_index(parent.trace_id, parent.span_id, name)
        span = Span(
            trace_id=parent.trace_id,
            span_id=span_id_for(parent.trace_id, parent.span_id, name, index),
            parent_id=parent.span_id,
            name=name,
            kind=kind,
            service=service,
            ordinal=parent.ordinal,
            start=self._clock(),
            attributes=dict(attributes) if attributes else {},
        )
        self._stack().append(span)
        return span

    def end_span(self, span: Span, status: str = "ok", error_code: str = "") -> Span:
        """Close ``span`` (must be this thread's innermost) and collect it."""
        stack = self._stack()
        if not stack or stack[-1] is not span:
            open_name = stack[-1].name if stack else "<none>"
            raise TraceError(
                f"end_span({span.name!r}) out of order: innermost open span "
                f"on this thread is {open_name!r}"
            )
        stack.pop()
        span.end = self._clock()
        span.status = status
        if error_code:
            span.error_code = error_code
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def trace(self, ordinal: int, name: str = "query") -> Iterator[Span]:
        """Context-managed root span; library errors mark it failed."""
        span = self.begin_trace(ordinal, name=name)
        try:
            yield span
        except SiriusError as exc:
            self.end_span(span, status="error",
                          error_code=getattr(exc, "code", "SIRIUS"))
            raise
        else:
            self.end_span(span)

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = SERVICE,
        service: str = "",
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """Context-managed child span; library errors mark it failed."""
        span = self.begin_span(name, kind=kind, service=service,
                               attributes=attributes)
        try:
            yield span
        except SiriusError as exc:
            self.end_span(span, status="error",
                          error_code=getattr(exc, "code", "SIRIUS"))
            raise
        else:
            self.end_span(span)

    def annotate(self, key: str, value: Any, add: bool = False) -> None:
        """Attach an attribute to this thread's innermost open span.

        A no-op with no open span (e.g. a service invoked outside any
        trace).  ``add=True`` accumulates numeric values.
        """
        current = self.current_span()
        if current is None:
            return
        attributes = current.attributes
        if add and key in attributes:
            attributes[key] = attributes[key] + value
        else:
            attributes[key] = value

    # -- collection --------------------------------------------------------------

    def adopt(self, spans: Sequence[Span]) -> None:
        """Merge finished spans recorded by a worker into this tracer."""
        if not spans:
            return
        with self._lock:
            self._spans.extend(spans)

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Finished spans, in canonical (ordinal, trace, span-ID) order."""
        with self._lock:
            collected = list(self._spans)
        return tuple(sorted(collected, key=sort_key))

    def finish(self) -> Tuple[Span, ...]:
        """Finished spans in canonical order (alias kept for call sites
        that read better as "the trace is complete now")."""
        return self.spans


def collect_spans(responses: Sequence[Any]) -> Tuple[Span, ...]:
    """Gather the span forest carried by a stream of responses.

    Works on anything exposing a ``spans`` attribute (``SiriusResponse``,
    ``ServiceResponse``); responses without spans contribute nothing.
    Returns canonical export order.
    """
    collected: List[Span] = []
    for response in responses:
        collected.extend(getattr(response, "spans", ()) or ())
    return tuple(sorted(collected, key=sort_key))
