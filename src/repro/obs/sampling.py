"""Deterministic trace sampling: head rates, tail rules, and a latency reservoir.

Full tracing does not survive the warehouse: at the 10⁶-query
extrapolation a ~10-span query forest is tens of millions of spans — the
exact "AI Tax" overhead the related work warns against paying blindly.
The tail-at-scale prescription is to keep *every interesting* trace and a
deterministic fraction of the rest, and this module implements it without
giving up the repo's replay discipline:

- **Head sampling** — :func:`head_decision` maps ``(seed, trace_id)``
  through sha256 onto a uniform in ``[0, 1)`` and keeps the trace when it
  falls under the configured rate.  A pure function of its arguments: no
  RNG state, no arrival order, no backend dependence — the same trace is
  kept or dropped on every replay, which is what lets the conformance
  suite demand byte-identical sampling across serial/thread/process runs
  and under chaos.
- **Tail rules** — always keep traces with an error span, a degraded or
  failed root, a deadline expiry, or an open circuit breaker
  (:data:`KEEP_ERROR` ... :data:`KEEP_BREAKER`).  These override the head
  coin, so the acceptance bar — 100 % retention of
  error/degraded/deadline traces — holds at any head rate, including 0.
- **Top-latency reservoir** — the ``k`` slowest traces by *deterministic*
  latency (the executor's ``virtual_seconds`` cost model, or the replay
  driver's virtual response time; never measured wall time) are always
  kept, ties broken by trace id.  Dean & Barroso's rare-but-slow outliers
  survive even when they carry no error.

:class:`TraceSampler` applies the three layers to whole span forests (or
to virtual replay outcomes) and reports a :class:`SamplingStats` with the
measured span-reduction factor and its extrapolation to a target query
volume — the number ``repro fleet-report`` prints next to the SLO table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.trace import QUERY, Span

#: Keep reasons, in override-priority order (first match wins in reports).
KEEP_ERROR = "error"          #: any span errored
KEEP_DEADLINE = "deadline"    #: a DEADLINE error code appeared
KEEP_BREAKER = "breaker"      #: an attempt saw an open circuit breaker
KEEP_DEGRADED = "degraded"    #: the root degraded (or failed) without erroring
KEEP_SLOW = "slow"            #: top-latency reservoir member
KEEP_HEAD = "head"            #: the head coin landed under the rate
DROPPED = "dropped"

#: Error codes that force retention regardless of everything else.
DEADLINE_CODES = ("DEADLINE",)


def head_score(seed: int, trace_id: str) -> float:
    """The trace's uniform head-sampling score in ``[0, 1)``.

    A pure function of ``(seed, trace_id)``: sha256 of the pair, top 8
    bytes scaled to ``[0, 1)``.  Trace ids are themselves pure in
    ``(trace seed, ordinal)``, so the whole decision replays.
    """
    payload = f"{seed}:{trace_id}:head".encode()
    numerator = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
    return numerator / float(1 << 64)


def head_decision(seed: int, trace_id: str, rate: float) -> bool:
    """Keep this trace under plain head sampling at ``rate``?"""
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError("head sampling rate must be in [0, 1]")
    return head_score(seed, trace_id) < rate


@dataclass(frozen=True)
class TraceSummary:
    """The deterministic facts one trace contributes to a sampling verdict."""

    trace_id: str
    ordinal: int
    n_spans: int
    latency: float            #: deterministic (virtual) latency, seconds
    errored: bool
    degraded: bool
    deadline: bool
    breaker_open: bool


@dataclass(frozen=True)
class SampleVerdict:
    """One trace's fate, and the first rule that sealed it."""

    trace_id: str
    ordinal: int
    kept: bool
    reason: str               #: one of the KEEP_* constants or DROPPED
    n_spans: int = 1


@dataclass(frozen=True)
class SamplingStats:
    """What sampling kept, dropped, and saved — plus the scale-out view."""

    head_rate: float
    seed: int
    top_k: int
    total_traces: int
    kept_traces: int
    total_spans: int
    kept_spans: int
    by_reason: Tuple[Tuple[str, int], ...]   #: sorted (reason, trace count)

    @property
    def span_reduction(self) -> float:
        """Spans avoided, as a factor (total / kept; inf when all dropped)."""
        if self.kept_spans == 0:
            return float("inf") if self.total_spans else 1.0
        return self.total_spans / self.kept_spans

    def kept_for(self, reason: str) -> int:
        for key, value in self.by_reason:
            if key == reason:
                return value
        return 0

    def extrapolate(self, target_queries: int = 1_000_000) -> "SamplingStats":
        """Project the measured mix to ``target_queries`` traces.

        Sampling decisions are i.i.d. across traces under the hash model,
        so every class scales proportionally; counts round to nearest to
        stay integers.  The reduction factor is scale-invariant — which is
        the point: the measured replay prices the million-query hour's
        tracing bill.
        """
        if target_queries < 1:
            raise ConfigurationError("need target_queries >= 1")
        if self.total_traces == 0:
            raise ConfigurationError("cannot extrapolate from zero traces")
        scale = target_queries / self.total_traces
        return SamplingStats(
            head_rate=self.head_rate,
            seed=self.seed,
            top_k=self.top_k,
            total_traces=target_queries,
            kept_traces=int(round(self.kept_traces * scale)),
            total_spans=int(round(self.total_spans * scale)),
            kept_spans=int(round(self.kept_spans * scale)),
            by_reason=tuple(
                (reason, int(round(count * scale)))
                for reason, count in self.by_reason
            ),
        )


def summarize_forest(spans: Iterable[Span]) -> List[TraceSummary]:
    """Collapse a span forest into per-trace summaries, in ordinal order.

    Only seed-deterministic span fields are read: status, error codes,
    root degradation flags, breaker attributes, and the
    ``virtual_seconds`` cost model — never measured wall times, so the
    summaries (and every verdict built on them) are backend-independent.
    """
    traces: Dict[str, Dict] = {}
    for span in spans:
        entry = traces.setdefault(
            span.trace_id,
            {
                "ordinal": span.ordinal, "n_spans": 0, "latency": 0.0,
                "errored": False, "degraded": False, "deadline": False,
                "breaker": False,
            },
        )
        entry["n_spans"] += 1
        if span.status == "error":
            entry["errored"] = True
        if span.error_code in DEADLINE_CODES:
            entry["deadline"] = True
        if span.attributes.get("breaker") == "open":
            entry["breaker"] = True
        if span.kind == QUERY:
            entry["ordinal"] = span.ordinal
            if span.attributes.get("degraded") or span.attributes.get("failed"):
                entry["degraded"] = True
            virtual = span.attributes.get("virtual_seconds")
            if virtual is not None:
                entry["latency"] = max(entry["latency"], float(virtual))
    return [
        TraceSummary(
            trace_id=trace_id,
            ordinal=entry["ordinal"],
            n_spans=entry["n_spans"],
            latency=entry["latency"],
            errored=entry["errored"],
            degraded=entry["degraded"],
            deadline=entry["deadline"],
            breaker_open=entry["breaker"],
        )
        for trace_id, entry in sorted(
            traces.items(), key=lambda item: (item[1]["ordinal"], item[0])
        )
    ]


def summarize_outcomes(outcomes: Sequence, trace_seed: int = 0) -> List[TraceSummary]:
    """Per-trace summaries for virtual replay outcomes.

    A rejected query is a degraded trace (matching the live fleet's
    one-span ADMISSION trace); an admitted one contributes its virtual
    response time as the deterministic latency.  Trace ids come from the
    same ``(seed, ordinal)`` derivation as live tracing, so a replay and
    a live run of the same stream sample identically.
    """
    from repro.obs.trace import trace_id_for

    summaries = []
    for outcome in outcomes:
        summaries.append(
            TraceSummary(
                trace_id=trace_id_for(trace_seed, outcome.ordinal),
                ordinal=outcome.ordinal,
                n_spans=2 if outcome.admitted else 1,
                latency=outcome.response if outcome.admitted else 0.0,
                errored=not outcome.admitted,
                degraded=not outcome.admitted,
                deadline=False,
                breaker_open=False,
            )
        )
    return summaries


class TraceSampler:
    """Head rate + tail rules + top-latency reservoir over trace summaries."""

    def __init__(self, head_rate: float = 0.1, seed: int = 0, top_k: int = 8):
        if not 0.0 <= head_rate <= 1.0:
            raise ConfigurationError("head sampling rate must be in [0, 1]")
        if top_k < 0:
            raise ConfigurationError("top_k must be >= 0")
        self.head_rate = head_rate
        self.seed = seed
        self.top_k = top_k

    def _slowest(self, summaries: Sequence[TraceSummary]) -> frozenset:
        """Trace ids of the ``top_k`` slowest traces (deterministic ties)."""
        ranked = sorted(
            summaries, key=lambda s: (-s.latency, s.trace_id)
        )
        return frozenset(s.trace_id for s in ranked[: self.top_k])

    def verdicts(self, summaries: Sequence[TraceSummary]) -> List[SampleVerdict]:
        """One verdict per trace, in the input order.

        Each verdict is a pure function of ``(sampler config, the trace's
        own summary, the slow set)`` — and the slow set is itself a pure
        function of the summary multiset — so permuting arrival order
        permutes, but never changes, the verdicts.
        """
        slowest = self._slowest(summaries)
        verdicts = []
        for summary in summaries:
            if summary.errored:
                kept, reason = True, KEEP_ERROR
            elif summary.deadline:
                kept, reason = True, KEEP_DEADLINE
            elif summary.breaker_open:
                kept, reason = True, KEEP_BREAKER
            elif summary.degraded:
                kept, reason = True, KEEP_DEGRADED
            elif summary.trace_id in slowest:
                kept, reason = True, KEEP_SLOW
            elif head_decision(self.seed, summary.trace_id, self.head_rate):
                kept, reason = True, KEEP_HEAD
            else:
                kept, reason = False, DROPPED
            verdicts.append(
                SampleVerdict(
                    trace_id=summary.trace_id,
                    ordinal=summary.ordinal,
                    kept=kept,
                    reason=reason,
                    n_spans=summary.n_spans,
                )
            )
        return verdicts

    def stats(self, summaries: Sequence[TraceSummary]) -> SamplingStats:
        """Aggregate sampling outcomes for a summary set."""
        verdicts = self.verdicts(summaries)
        by_reason: Dict[str, int] = {}
        kept_traces = kept_spans = total_spans = 0
        for verdict in verdicts:
            total_spans += verdict.n_spans
            if verdict.kept:
                kept_traces += 1
                kept_spans += verdict.n_spans
                by_reason[verdict.reason] = by_reason.get(verdict.reason, 0) + 1
        return SamplingStats(
            head_rate=self.head_rate,
            seed=self.seed,
            top_k=self.top_k,
            total_traces=len(verdicts),
            kept_traces=kept_traces,
            total_spans=total_spans,
            kept_spans=kept_spans,
            by_reason=tuple(sorted(by_reason.items())),
        )

    def sample_spans(self, spans: Sequence[Span]) -> Tuple[List[Span], SamplingStats]:
        """Filter a span forest down to the kept traces, plus the stats."""
        summaries = summarize_forest(spans)
        verdicts = {v.trace_id: v for v in self.verdicts(summaries)}
        kept = [
            span for span in spans
            if verdicts[span.trace_id].kept
        ]
        return kept, self.stats(summaries)
