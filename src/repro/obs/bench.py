"""Benchmark registry, schema-versioned reports, and the regression gate.

``repro bench`` is the repo's durable performance trajectory: a registry
of pinned-seed benchmarks (the seven Sirius Suite kernels plus traced
serving runs), a schema-versioned JSON report (``BENCH_<tag>.json`` at
the repo root), and a gate (``repro bench --check BASELINE.json``) that
compares a fresh run against a committed baseline and exits non-zero on
regressions.

**No wall clocks in decisions.**  Measured wall seconds and latency
percentiles are recorded — they are the trajectory humans read — but the
gate only compares *gated* metrics, and every gated metric is
deterministic under the benchmark's pinned seed: work counters (flops,
bytes, items — :mod:`repro.obs.counters`), result checksums, injected
virtual latency, span counts, and outcome counts.  A CI runner's noisy
clock therefore cannot flake the gate; a changed checksum or a doubled
flop count fails it exactly.

**Noise-aware rule.**  Each benchmark runs ``repeats`` times; the gate
compares the *best* of those samples (min for lower-is-better, max for
higher-is-better) and flags only when the best crosses the baseline's
best by more than the metric's relative tolerance — the standard
min-of-k + relative-threshold rule, which a noisy-but-flat trajectory
must pass.  For ``better="equal"`` metrics (checksums, counters) the rule
degenerates to a tolerance band around the baseline value.

See ``docs/BENCHMARKING.md`` for the JSON schema and baseline-update
workflow.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.context import use_tracer
from repro.obs.counters import aggregate_counters, kernel_counters
from repro.obs.metrics import MetricsRegistry, bench_histogram_name
from repro.obs.trace import Tracer, collect_spans

#: Bumped on any incompatible change to the report JSON layout.
SCHEMA = "repro.bench/v1"
SCHEMA_VERSION = 1

#: Directions a gated metric can prefer.
LOWER, HIGHER, EQUAL = "lower", "higher", "equal"


@dataclass(frozen=True)
class MetricSpec:
    """How the gate treats one benchmark metric."""

    gated: bool = True
    better: str = EQUAL      #: "lower" | "higher" | "equal"
    rel_tol: float = 0.0     #: relative threshold before flagging

    def __post_init__(self) -> None:
        if self.better not in (LOWER, HIGHER, EQUAL):
            raise ConfigurationError(f"unknown metric direction {self.better!r}")
        if self.rel_tol < 0:
            raise ConfigurationError("rel_tol must be >= 0")


#: Informational metric (recorded, never gated).
INFO = MetricSpec(gated=False)
#: Deterministic counter/count: must match the baseline exactly.
EXACT = MetricSpec(gated=True, better=EQUAL, rel_tol=0.0)
#: Float checksum: equal up to accumulated rounding across BLAS builds.
CHECKSUM = MetricSpec(gated=True, better=EQUAL, rel_tol=1e-6)


class Benchmark:
    """One registered benchmark: pinned seeds, deterministic gated metrics.

    Subclasses define :meth:`prepare` (once per invocation, untimed) and
    :meth:`run` (once per repeat, timed by the harness), and declare
    ``metric_specs`` for every gated metric :meth:`run` returns.  Metrics
    without a spec are recorded as informational.
    """

    name: str = ""
    description: str = ""
    metric_specs: Dict[str, MetricSpec] = {}

    def prepare(self, quick: bool) -> Any:
        """Build inputs/models (untimed; not part of any metric)."""
        return None

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        """Execute once; return metric values (floats/ints only)."""
        raise NotImplementedError

    def spec_for(self, metric: str) -> MetricSpec:
        return self.metric_specs.get(metric, INFO)


def fingerprint(text: str) -> int:
    """A JSON-safe integer digest of a deterministic text artifact."""
    return int(hashlib.sha256(text.encode()).hexdigest()[:12], 16)


# -- the registry -------------------------------------------------------------------

_REGISTRY: Dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    """Add a benchmark to the registry (name must be unique)."""
    if not benchmark.name:
        raise ConfigurationError("benchmark must have a name")
    if benchmark.name in _REGISTRY:
        raise ConfigurationError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def all_benchmarks() -> Tuple[Benchmark, ...]:
    """Registered benchmarks in name order (populates the registry)."""
    _populate()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def benchmarks_matching(filters: Sequence[str]) -> Tuple[Benchmark, ...]:
    """Benchmarks whose name contains any of ``filters`` (all if empty)."""
    benchmarks = all_benchmarks()
    if not filters:
        return benchmarks
    chosen = tuple(
        b for b in benchmarks if any(term in b.name for term in filters)
    )
    if not chosen:
        raise ConfigurationError(
            f"no benchmark matches {list(filters)!r}; "
            f"available: {', '.join(b.name for b in benchmarks)}"
        )
    return chosen


# -- built-in benchmarks ------------------------------------------------------------


class KernelBenchmark(Benchmark):
    """One Sirius Suite kernel under a tracer: counters + checksum.

    Gated metrics are the kernel-span work counters (exact: they are pure
    functions of the pinned input shapes) and the result checksum (equal
    to a small relative tolerance, since dense kernels sum through BLAS).
    """

    metric_specs = {
        "flops": EXACT,
        "bytes": EXACT,
        "items": EXACT,
        "invocations": EXACT,
        "checksum": CHECKSUM,
    }

    def __init__(self, kernel_name: str, scale: float, quick_scale: float):
        self.name = f"suite.{kernel_name}"
        self.kernel_name = kernel_name
        self.scale = scale
        self.quick_scale = quick_scale
        self.description = f"Sirius Suite kernel {kernel_name!r} (single-threaded)"

    def prepare(self, quick: bool) -> Any:
        from repro.suite import kernel_by_name

        kernel = kernel_by_name(self.kernel_name)
        scale = self.quick_scale if quick else self.scale
        return kernel, kernel.prepare(scale)

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        kernel, inputs = state
        tracer = Tracer(seed=0)
        with use_tracer(tracer):
            with tracer.trace(0, name="bench"):
                outcome = kernel.execute(inputs=inputs)
        counters = kernel_counters(tracer.spans).get(self.kernel_name)
        if counters is None:
            raise ConfigurationError(
                f"kernel {self.kernel_name!r} emitted no kernel span"
            )
        return {
            "checksum": outcome.checksum,
            **counters.as_dict(),
        }


class _ServeBenchmark(Benchmark):
    """Shared plumbing for traced serving benchmarks over the real pipeline."""

    #: One pipeline per process, shared across serve benchmarks and repeats
    #: (building it trains models — expensive, and not what we measure).
    _shared: Dict[str, Any] = {}

    def _pipeline_and_queries(self, quick: bool):
        key = "quick" if quick else "full"
        if key not in self._shared:
            from repro.core import InputSet, SiriusPipeline

            pipeline = self._shared.get("pipeline")
            if pipeline is None:
                pipeline = SiriusPipeline.build()
                self._shared["pipeline"] = pipeline
            queries = InputSet.build().all_queries
            n = 6 if quick else 12
            self._shared[key] = (pipeline, [queries[i % len(queries)] for i in range(n)])
        return self._shared[key]


class ServeChaosBenchmark(_ServeBenchmark):
    """Seeded chaos serving: replay fingerprint, virtual latency, outcomes.

    Every gated metric is deterministic under the chaos seed: the
    timing-stripped span-forest fingerprint, total injected virtual
    latency, span/outcome counts, and the aggregate work counters the
    service hot paths record.
    """

    name = "serve.chaos"
    description = "resilient serving under the default fault plan (seed 42)"
    seed = 42
    metric_specs = {
        "forest_fingerprint": EXACT,
        "virtual_seconds": MetricSpec(gated=True, better=EQUAL, rel_tol=1e-9),
        "spans": EXACT,
        "ok": EXACT,
        "degraded": EXACT,
        "failed": EXACT,
        "flops": EXACT,
        "bytes": EXACT,
    }

    def prepare(self, quick: bool) -> Any:
        return self._pipeline_and_queries(quick)

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        from repro.obs.critical_path import analyze_forest
        from repro.obs.export import to_jsonl
        from repro.serving import (
            default_chaos_plan,
            default_policies,
            resilient_executor,
        )

        pipeline, queries = state
        executor = resilient_executor(
            pipeline.serving, default_policies(seed=self.seed),
            default_chaos_plan(self.seed),
        )
        executor.trace_seed = self.seed
        responses = executor.run_all(queries, on_error="degrade")
        spans = collect_spans(responses)
        deterministic = to_jsonl(spans, timing=False)
        analyses = analyze_forest(spans)
        counters = aggregate_counters(spans)
        failed = sum(1 for r in responses if r.failed)
        degraded = sum(1 for r in responses if r.degraded and not r.failed)
        return {
            "forest_fingerprint": fingerprint(deterministic),
            "virtual_seconds": sum(a.virtual_seconds for a in analyses),
            "spans": len(spans),
            "ok": len(responses) - failed - degraded,
            "degraded": degraded,
            "failed": failed,
            "flops": counters.flops,
            "bytes": counters.bytes,
        }


class ServePlainBenchmark(_ServeBenchmark):
    """Traced fault-free serving: span structure, counters, answer digest."""

    name = "serve.plain"
    description = "traced serving of the standard query mix, no faults"
    metric_specs = {
        "answer_fingerprint": EXACT,
        "spans": EXACT,
        "flops": EXACT,
        "bytes": EXACT,
        "items": EXACT,
    }

    def prepare(self, quick: bool) -> Any:
        return self._pipeline_and_queries(quick)

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        pipeline, queries = state
        executor = pipeline.serving
        executor.trace_seed = 0
        try:
            responses = executor.run_all(queries)
        finally:
            executor.trace_seed = None
        spans = collect_spans(responses)
        counters = aggregate_counters(spans)
        answers = "\n".join(r.answer for r in responses)
        return {
            "answer_fingerprint": fingerprint(answers),
            "spans": len(spans),
            "flops": counters.flops,
            "bytes": counters.bytes,
            "items": counters.items,
        }


class ServeStreamingBenchmark(_ServeBenchmark):
    """Chunked sessions through the asyncio gateway: streaming determinism.

    Audio arrives in 150 ms chunks, all sessions interleaved round-robin;
    partial hypotheses are polled on every feed.  Partial emission is a
    pure function of the audio and the chunking (each session's bouts are
    lock-serialized, so poll *k* always sees exactly the frames chunk *k*
    decoded), which makes the partial/endpoint/late-chunk counts and the
    span forest gateable.  ``single_chunk_equivalent`` is the refactor's
    correctness anchor: a one-chunk session replayed through
    ``run(precomputed=...)`` must match plain ``run()`` byte-for-byte.
    """

    name = "serve.streaming"
    description = "chunked streaming sessions via the asyncio gateway (seed 0)"
    metric_specs = {
        "answer_fingerprint": EXACT,
        "transcript_fingerprint": EXACT,
        "partial_fingerprint": EXACT,
        "partials": EXACT,
        "partial_spans": EXACT,
        "spans": EXACT,
        "endpointed": EXACT,
        "late_chunks": EXACT,
        "single_chunk_equivalent": EXACT,
        "ok": EXACT,
        "degraded": EXACT,
        "failed": EXACT,
    }

    def prepare(self, quick: bool) -> Any:
        return self._pipeline_and_queries(quick)

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        from repro.obs.metrics import TTFP_HISTOGRAM
        from repro.obs.trace import PARTIAL, sort_key
        from repro.serving import serve_streams

        pipeline, queries = state
        executor = pipeline.serving
        executor.trace_seed = 0
        registry = MetricsRegistry()
        saved_metrics = executor.metrics
        executor.metrics = registry
        try:
            report = serve_streams(executor, queries, chunk_seconds=0.15)
            equivalent = all(
                self._single_chunk_equivalent(executor, query, ordinal)
                for ordinal, query in enumerate(queries)
            )
        finally:
            executor.trace_seed = None
            executor.metrics = saved_metrics
        spans = collect_spans(report.responses)
        partial_spans = [s for s in spans if s.kind == PARTIAL]
        partial_texts = "\n".join(
            f"{s.trace_id}:{s.attributes.get('partial_index')}:"
            f"{s.attributes.get('chars')}"
            for s in sorted(partial_spans, key=sort_key)
        )
        ttfp = registry.histogram(TTFP_HISTOGRAM)
        failed = sum(1 for r in report.responses if r.failed)
        degraded = sum(
            1 for r in report.responses if r.degraded and not r.failed
        )
        return {
            "answer_fingerprint": fingerprint(
                "\n".join(r.answer for r in report.responses)
            ),
            "transcript_fingerprint": fingerprint(
                "\n".join(r.transcript for r in report.responses)
            ),
            "partial_fingerprint": fingerprint(partial_texts),
            "partials": report.partials_total,
            "partial_spans": len(partial_spans),
            "spans": len(spans),
            "endpointed": sum(1 for flag in report.endpointed if flag),
            "late_chunks": report.late_chunks,
            "single_chunk_equivalent": int(equivalent),
            "ok": len(report.responses) - failed - degraded,
            "degraded": degraded,
            "failed": failed,
            "ttfp_p50_ms": ttfp.percentile(50) * 1000 if ttfp.count else 0.0,
        }

    @staticmethod
    def _single_chunk_equivalent(executor, query, ordinal: int) -> bool:
        from repro.obs.export import to_jsonl
        from repro.serving.service import ASR

        plain = executor.run(query, ordinal=ordinal)
        session = executor.services[ASR].open_session(
            query=query, ordinal=ordinal, seed=executor.trace_seed
        )
        session.feed(query.audio)
        outcome = session.finish()
        replay = executor.run(query, ordinal=ordinal, precomputed={ASR: outcome})
        fields = all(
            getattr(plain, name) == getattr(replay, name)
            for name in ("query_type", "transcript", "action", "answer",
                         "matched_image", "degraded", "failures")
        )
        return fields and to_jsonl(
            collect_spans([plain]), timing=False
        ) == to_jsonl(collect_spans([replay]), timing=False)


class ServeClusterBenchmark(_ServeBenchmark):
    """Routed sharded fleet, live and in model replay: cluster determinism.

    The live half serves the query mix through sharded replica executors
    behind the power-of-two router with seeded admission; gated metrics
    are the timing-stripped span-forest fingerprint (router spans
    included), the outcome and placement-table fingerprints, and the
    conservation counts.  The model half replays a pinned Poisson stream
    against the virtual-time fleet with an autoscaler and gates the full
    outcome-stream digest — every routing, admission, service-draw, and
    scaling decision, byte-exact.
    """

    name = "serve.cluster"
    description = "sharded replicas behind the router, live + model replay (seed 7)"
    seed = 7
    metric_specs = {
        "forest_fingerprint": EXACT,
        "outcome_fingerprint": EXACT,
        "routes_fingerprint": EXACT,
        "replay_digest": EXACT,
        "spans": EXACT,
        "router_spans": EXACT,
        "rejected": EXACT,
        "ok": EXACT,
        "degraded": EXACT,
        "failed": EXACT,
        "replay_rejected": EXACT,
        "replay_scaleups": EXACT,
    }

    def prepare(self, quick: bool) -> Any:
        from repro.serving.cluster import AdmissionControl, build_cluster

        pipeline, queries = self._pipeline_and_queries(quick)
        key = f"cluster-{'quick' if quick else 'full'}"
        if key not in self._shared:
            cluster = build_cluster(
                pipeline,
                n_replicas=3,
                n_shards=2,
                policy="power-of-two",
                seed=self.seed,
                admission=AdmissionControl(drop_rate=0.2, seed=self.seed),
                trace_seed=self.seed,
            )
            cluster.warmup()
            self._shared[key] = cluster
        return self._shared[key], queries

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        from repro.datacenter.arrivals import PoissonProcess
        from repro.datacenter.simulation import exponential_sampler
        from repro.obs.export import to_jsonl
        from repro.obs.trace import ROUTER
        from repro.serving.cluster import (
            AdmissionControl,
            AutoscalerPolicy,
            replay_cluster,
        )
        from repro.serving.cluster.autoscaler import SCALE_UP

        cluster, queries = state
        responses = cluster.run_all(queries)
        routes = cluster.plan_routes(len(queries))
        spans = collect_spans(responses)
        failed = sum(1 for r in responses if r.failed)
        degraded = sum(1 for r in responses if r.degraded and not r.failed)
        outcomes = "\n".join(
            f"{r.query_type.value}:{r.transcript}:{r.answer}:{r.matched_image}"
            f":{int(r.degraded)}:{sorted(r.failures.items())}"
            for r in responses
        )

        # Model replay under pinned parameters — nothing measured feeds it,
        # so the full decision stream is gateable byte-exact.
        mean_service = 0.01
        replay = replay_cluster(
            PoissonProcess(rate=0.8 / mean_service * 2),
            exponential_sampler(mean_service, seed=self.seed + 1),
            2_000 if quick else 10_000,
            policy="power-of-two",
            n_replicas=2,
            seed=self.seed,
            admission=AdmissionControl(max_depth=40, seed=self.seed),
            autoscaler=AutoscalerPolicy(slo_p99=0.05, max_replicas=6),
            tick_seconds=2.0,
        )
        return {
            "forest_fingerprint": fingerprint(to_jsonl(spans, timing=False)),
            "outcome_fingerprint": fingerprint(outcomes),
            "routes_fingerprint": fingerprint(
                "\n".join(repr(route.key()) for route in routes)
            ),
            "replay_digest": fingerprint(replay.digest()),
            "spans": len(spans),
            "router_spans": sum(1 for s in spans if s.kind == ROUTER),
            "rejected": sum(1 for r in responses if "ROUTER" in r.failures),
            "ok": len(responses) - failed - degraded,
            "degraded": degraded,
            "failed": failed,
            "replay_rejected": replay.n_rejected,
            "replay_scaleups": sum(
                1 for d in replay.decisions if d.action == SCALE_UP
            ),
            "replay_p99_ms": replay.p99_response * 1000,
        }


class ObsRollupBenchmark(Benchmark):
    """The fleet telemetry plane under a pinned-seed replay.

    Replays a seeded arrival stream with the autoscaler engaged, then
    gates the full telemetry stack end to end: the canonical-JSON
    fingerprint of the windowed rollup snapshot, the rollup cell counts,
    the trace-sampling verdict-stream fingerprint, the kept/total trace
    split, and the burn-rate alert count.  Everything lives on the
    virtual clock, so a single drifted float or reordered cell fails the
    gate exactly.
    """

    name = "obs.rollup"
    description = "windowed rollups + sampling + SLO burn over a pinned replay (seed 11)"
    seed = 11
    metric_specs = {
        "rollup_fingerprint": EXACT,
        "counter_cells": EXACT,
        "panel_cells": EXACT,
        "windows": EXACT,
        "verdict_fingerprint": EXACT,
        "kept_traces": EXACT,
        "total_traces": EXACT,
        "kept_spans": EXACT,
        "total_spans": EXACT,
        "alert_firings": EXACT,
    }

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        from repro.datacenter.arrivals import PoissonProcess
        from repro.datacenter.simulation import exponential_sampler
        from repro.obs.fleet_report import report_from_replay, report_to_json
        from repro.obs.sampling import TraceSampler, summarize_outcomes
        from repro.serving.cluster import AutoscalerPolicy, replay_cluster

        mean_service = 0.02
        result = replay_cluster(
            PoissonProcess(rate=0.85 / mean_service),
            exponential_sampler(mean_service, seed=self.seed + 1),
            2_000 if quick else 10_000,
            policy="least-loaded",
            n_replicas=2,
            seed=self.seed,
            autoscaler=AutoscalerPolicy(slo_p99=0.08, max_replicas=6),
            tick_seconds=2.0,
        )
        report = report_from_replay(result, trace_seed=self.seed)
        rollups = result.rollups
        sampler = TraceSampler(head_rate=0.1, seed=0, top_k=8)
        verdicts = sampler.verdicts(
            summarize_outcomes(result.outcomes, trace_seed=self.seed)
        )
        return {
            "rollup_fingerprint": fingerprint(report_to_json(report)),
            "counter_cells": len(rollups.counters),
            "panel_cells": len(rollups.panels),
            "windows": len(rollups.windows()),
            "verdict_fingerprint": fingerprint(
                "\n".join(
                    f"{v.trace_id}:{int(v.kept)}:{v.reason}" for v in verdicts
                )
            ),
            "kept_traces": report.sampling.kept_traces,
            "total_traces": report.sampling.total_traces,
            "kept_spans": report.sampling.kept_spans,
            "total_spans": report.sampling.total_spans,
            "alert_firings": sum(len(s.firings) for s in report.slos),
        }


class ObsCostBenchmark(Benchmark):
    """The cost ledger under a pinned-seed replay.

    Replays a seeded arrival stream, folds it into the joule/dollar
    ledger, reprices it on every platform, and extrapolates the fleet
    bill — then gates the canonical-JSON fingerprint of the whole report
    plus the headline integers.  Every number is a pure function of the
    seeds and the Table 5/6/7 constants, so a drifted watt, speedup, or
    rounding point fails the gate exactly.
    """

    name = "obs.cost"
    description = "joule/dollar ledger + what-if repricing over a pinned replay (seed 13)"
    seed = 13
    metric_specs = {
        "report_fingerprint": EXACT,
        "ledger_fingerprint": EXACT,
        "total_microjoules": EXACT,
        "tax_microjoules": EXACT,
        "queries": EXACT,
        "what_if_platforms": EXACT,
        "fleet_servers": EXACT,
    }

    def run(self, state: Any, quick: bool) -> Dict[str, float]:
        from repro.datacenter.arrivals import PoissonProcess
        from repro.datacenter.simulation import exponential_sampler
        from repro.obs.cost import (
            cost_report_from_replay,
            render_cost_report,
            report_to_json,
        )
        from repro.serving.cluster import AutoscalerPolicy, replay_cluster

        mean_service = 0.02
        result = replay_cluster(
            PoissonProcess(rate=0.85 / mean_service),
            exponential_sampler(mean_service, seed=self.seed + 1),
            2_000 if quick else 10_000,
            policy="least-loaded",
            n_replicas=2,
            seed=self.seed,
            autoscaler=AutoscalerPolicy(slo_p99=0.08, max_replicas=6),
            tick_seconds=2.0,
        )
        report = cost_report_from_replay(result, fleet=True)
        ledger = report.ledger
        return {
            "report_fingerprint": fingerprint(report_to_json(report)),
            "ledger_fingerprint": fingerprint(render_cost_report(report)),
            "total_microjoules": ledger.total_microjoules,
            "tax_microjoules": ledger.tax_microjoules(),
            "queries": len(ledger.queries),
            "what_if_platforms": len(report.what_if),
            "fleet_servers": sum(row.n_servers for row in report.fleet.rows),
        }


def _populate() -> None:
    if _REGISTRY:
        return
    for kernel_name in ("gmm", "dnn", "stemmer", "regex", "crf", "fe", "fd"):
        register(KernelBenchmark(kernel_name, scale=0.5, quick_scale=0.1))
    register(ServeChaosBenchmark())
    register(ServePlainBenchmark())
    register(ServeStreamingBenchmark())
    register(ServeClusterBenchmark())
    register(ObsRollupBenchmark())
    register(ObsCostBenchmark())


# -- running ------------------------------------------------------------------------


def run_benchmarks(
    filters: Sequence[str] = (),
    quick: bool = False,
    repeats: int = 3,
    tag: str = "dev",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run (a filtered subset of) the registry; return the report dict.

    Wall seconds per repeat feed a :class:`MetricsRegistry` histogram for
    the informational p50/p95/p99; metric samples are collected per repeat
    so the gate can apply min-of-k.
    """
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    registry = MetricsRegistry()
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "quick": quick,
        "repeats": repeats,
        "benchmarks": {},
    }
    for benchmark in benchmarks_matching(filters):
        if progress is not None:
            progress(f"bench {benchmark.name} ({repeats} repeats)")
        state = benchmark.prepare(quick)
        histogram = registry.histogram(bench_histogram_name(benchmark.name))
        samples: Dict[str, List[float]] = {}
        for _ in range(repeats):
            start = time.perf_counter()
            values = benchmark.run(state, quick)
            histogram.observe(time.perf_counter() - start)
            for metric, value in values.items():
                samples.setdefault(metric, []).append(float(value))
        metrics = {
            metric: {
                "samples": series,
                **_spec_fields(benchmark.spec_for(metric)),
            }
            for metric, series in sorted(samples.items())
        }
        report["benchmarks"][benchmark.name] = {
            "description": benchmark.description,
            "wall_seconds": list(histogram.samples),
            "latency_ms": {
                "mean": histogram.mean * 1000,
                "p50": histogram.percentile(50) * 1000,
                "p95": histogram.percentile(95) * 1000,
                "p99": histogram.percentile(99) * 1000,
            },
            "metrics": metrics,
        }
    return report


def _spec_fields(spec: MetricSpec) -> Dict[str, Any]:
    return {"gated": spec.gated, "better": spec.better, "rel_tol": spec.rel_tol}


def to_json(report: Dict[str, Any]) -> str:
    """Canonical JSON text (sorted keys, indented for reviewable diffs)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a bench report JSON file."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read bench report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path!r} is not valid JSON: {exc}") from None
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path!r} is not a {SCHEMA} report "
            f"(schema={report.get('schema') if isinstance(report, dict) else None!r})"
        )
    if report.get("schema_version") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path!r} has schema_version {report.get('schema_version')!r}; "
            f"this build reads {SCHEMA_VERSION} — regenerate the baseline"
        )
    return report


# -- the gate -----------------------------------------------------------------------


@dataclass(frozen=True)
class GateFinding:
    """One gate violation (or coverage gap) between baseline and current."""

    benchmark: str
    metric: str
    kind: str                 #: "regression" | "missing-benchmark" | "missing-metric"
    baseline: Optional[float] = None
    current: Optional[float] = None
    message: str = ""


def _best(samples: Sequence[float], better: str) -> float:
    if not samples:
        raise ConfigurationError("metric has no samples")
    if better == HIGHER:
        return max(samples)
    if better == LOWER:
        return min(samples)
    return min(samples)  # equal: canonical representative


def check_report(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[GateFinding]:
    """Compare two reports; return regressions (empty list = gate passes).

    Only gated metrics participate.  The gate direction comes from the
    *baseline* spec, so a PR that silently un-gates a metric in code still
    gets checked against what the committed baseline promised.  Benchmarks
    or gated metrics present in the baseline but absent from the current
    run are coverage regressions and fail the gate too; new benchmarks in
    the current run pass silently (they extend the baseline next update).
    """
    findings: List[GateFinding] = []
    current_benchmarks = current.get("benchmarks", {})
    for name, base_entry in sorted(baseline.get("benchmarks", {}).items()):
        entry = current_benchmarks.get(name)
        if entry is None:
            findings.append(GateFinding(
                benchmark=name, metric="", kind="missing-benchmark",
                message=f"benchmark {name!r} in baseline but not in current run",
            ))
            continue
        current_metrics = entry.get("metrics", {})
        for metric, base_metric in sorted(base_entry.get("metrics", {}).items()):
            if not base_metric.get("gated"):
                continue
            cur_metric = current_metrics.get(metric)
            if cur_metric is None:
                findings.append(GateFinding(
                    benchmark=name, metric=metric, kind="missing-metric",
                    message=f"{name}: gated metric {metric!r} disappeared",
                ))
                continue
            better = base_metric.get("better", EQUAL)
            rel_tol = float(base_metric.get("rel_tol", 0.0))
            base_best = _best(base_metric.get("samples", ()), better)
            cur_best = _best(cur_metric.get("samples", ()), better)
            regressed, message = _compare(base_best, cur_best, better, rel_tol)
            if regressed:
                findings.append(GateFinding(
                    benchmark=name, metric=metric, kind="regression",
                    baseline=base_best, current=cur_best,
                    message=f"{name}.{metric}: {message}",
                ))
    return findings


def _compare(
    base: float, cur: float, better: str, rel_tol: float
) -> Tuple[bool, str]:
    if better == LOWER:
        limit = base * (1.0 + rel_tol)
        if cur > limit:
            return True, (
                f"best-of-k {cur:g} exceeds baseline {base:g} "
                f"by more than {rel_tol:.1%}"
            )
    elif better == HIGHER:
        limit = base * (1.0 - rel_tol)
        if cur < limit:
            return True, (
                f"best-of-k {cur:g} fell below baseline {base:g} "
                f"by more than {rel_tol:.1%}"
            )
    else:  # EQUAL
        if abs(cur - base) > rel_tol * max(1.0, abs(base)):
            return True, f"expected {base:g} (±{rel_tol:g} rel), got {cur:g}"
    return False, ""


# -- rendering ----------------------------------------------------------------------


def format_report(report: Dict[str, Any]) -> str:
    """Human table for ``repro bench run`` without ``--json``."""
    from repro.analysis import format_table  # documented cycle; see report.py
    from repro.obs.counters import format_count

    rows = []
    for name, entry in sorted(report["benchmarks"].items()):
        metrics = entry.get("metrics", {})

        def value(key: str) -> float:
            series = metrics.get(key, {}).get("samples", ())
            return series[0] if series else 0.0

        flops, mem = value("flops"), value("bytes")
        rows.append([
            name,
            str(len(entry.get("wall_seconds", ()))),
            f"{entry['latency_ms']['p50']:.1f}",
            f"{entry['latency_ms']['p99']:.1f}",
            format_count(flops),
            format_count(mem),
            f"{flops / mem:.2f}" if mem else "-",
        ])
    title = (
        f"repro bench (tag={report['tag']}"
        + (", quick" if report.get("quick") else "")
        + f", repeats={report['repeats']})"
    )
    return format_table(
        title,
        ["Benchmark", "Runs", "p50 (ms)", "p99 (ms)", "Flops", "Bytes", "F/B"],
        rows,
    )


def format_findings(findings: Sequence[GateFinding]) -> str:
    """Gate verdict text: one line per finding, or the all-clear."""
    if not findings:
        return "bench gate: ok (no gated metric regressed)"
    lines = [f"bench gate: {len(findings)} finding(s)"]
    for finding in findings:
        lines.append(f"  [{finding.kind}] {finding.message}")
    return "\n".join(lines)
