"""Ambient trace context: which tracer (if any) the current thread reports to.

The serving stack has layers that cannot see each other's signatures — the
plan executor, resilience wrappers, fault injectors, and the component
profiler all run inside one service call but share no parameter channel.
This module is that channel: the executor (or ``Service.__call__``)
activates a tracer for the duration of a call, and any layer underneath
reaches it through :func:`current_tracer` / :func:`annotate` without a new
argument threading through every ``invoke`` in the repository.

Deliberately dependency-free (stdlib only): :mod:`repro.profiling` and
:mod:`repro.serving.faults` sit below the tracing layer and import this
module without creating a cycle.  The context is thread-local — worker
threads and forked workers re-activate their own tracer (see
``Service.__call__``), which is what keeps span parentage per-thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

_LOCAL = threading.local()


def current_tracer() -> Optional[Any]:
    """The tracer active on this thread, or ``None`` when not tracing."""
    return getattr(_LOCAL, "tracer", None)


@contextmanager
def use_tracer(tracer: Optional[Any]) -> Iterator[Optional[Any]]:
    """Activate ``tracer`` on this thread for the duration of the block.

    Nests: the previously active tracer (if any) is restored on exit, so a
    traced call inside another traced call keeps both layers honest.
    """
    previous = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = tracer
    try:
        yield tracer
    finally:
        _LOCAL.tracer = previous


def annotate(key: str, value: Any, add: bool = False) -> None:
    """Attach ``key=value`` to the innermost open span, if one exists.

    A no-op when no tracer is active or no span is open, so low layers
    (fault injectors, the virtual-latency ledger) can annotate
    unconditionally.  With ``add=True`` numeric values accumulate instead
    of overwriting — used for virtual latency charged in several pieces.
    """
    tracer = current_tracer()
    if tracer is not None:
        tracer.annotate(key, value, add=add)
