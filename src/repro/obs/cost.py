"""The cost ledger: per-query joules and dollars, with an explicit AI tax.

The paper's warehouse-scale claims (Sections 6-7, Figures 15/18, Tables
8/9) are energy and TCO claims, but aggregate models hide *where* the
joules go inside a query.  This module folds the deterministic span
forests (:mod:`repro.obs.trace`) and work counters
(:mod:`repro.obs.counters`) into a **ledger**: per query, per stage, an
integer-microjoule energy attribution and a TCO-amortized dollar figure,
split into an explicit "AI tax" decomposition:

- ``compute``   — served kernel work (modeled seconds from counter flops
  through the roofline, priced at full-server watts);
- ``degraded``  — work a degraded query threw away (a failed service in a
  VIQ-to-VQ downgrade: computed, then discarded);
- ``retries``   — wasted attempts: retried tries, breaker fast-fails,
  deadline overruns, and everything under terminally failed queries;
- ``router_wait`` — time spent in the router stage;
- ``queueing``  — injected stall time on otherwise successful paths.

Everything except ``compute`` is overhead the accelerators never touch —
the "AI tax" made a measured line item instead of noise.

**Exactness discipline.**  Energy is produced at exactly one rounding
point (:func:`repro.obs.pricing.energy_microjoules`) and totals are
integer sums of those values, so per-stage attributions sum *exactly* to
per-query and per-trace totals (``math.fsum`` over the integers is the
plain sum); dollars accumulate with ``math.fsum``.  Every input is a pure
function of seeds and virtual time, so the ledger is byte-identical
across serial/thread/process backends, chaos replays included.

**What-if repricing.**  :func:`reprice` rebuilds the same ledger on
CMP/GPU/Phi/FPGA: service-stage compute seconds scale by the Table 5
service speedups (Amdahl-composed, transfer-overhead-burdened —
:mod:`repro.platforms.speedups`), Sirius Suite kernel spans go through
the roofline with their per-kernel SIMD-friendliness
(:mod:`repro.platforms.roofline`), and the tax never scales.  Per-stage
compute dollars then reproduce the Figure 18 / Table 8/9 TCO rank order
at trace granularity (the proportionality is exact: both are
``monthly_tco x (1 + overhead) / speedup``).  :func:`fleet_costs`
extrapolates through the cluster replay's scale-invariance argument to
the million-query day: servers, joules, and dollars per platform, with
the AI tax as its own line.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.datacenter.tco import TCOModel, TCOParameters
from repro.errors import ObsError
from repro.obs.counters import WorkCounters, counters_of, wasted_span_ids
from repro.obs.pricing import (
    dollars_per_server_second,
    electricity_dollars,
    energy_microjoules,
)
from repro.obs.trace import KERNEL, QUERY, ROUTER, SERVICE, sort_key
from repro.platforms.roofline import KERNEL_PROFILES, attainable_for_intensity
from repro.platforms.spec import CMP, PLATFORMS, spec
from repro.platforms.speedups import ASR_GMM, IMM, QA, service_speedup

#: Canonical JSON schema tag for ``repro cost-report --json``.
SCHEMA = "repro.cost-report/v1"

#: Ledger categories, in decomposition order.  ``COMPUTE`` is served work;
#: everything after it is the AI tax.
COMPUTE = "compute"
DEGRADED = "degraded"
RETRIES = "retries"
ROUTER_WAIT = "router_wait"
QUEUEING = "queueing"
TAX_CATEGORIES: Tuple[str, ...] = (DEGRADED, RETRIES, ROUTER_WAIT, QUEUEING)
CATEGORIES: Tuple[str, ...] = (COMPUTE,) + TAX_CATEGORIES

#: Trace service labels -> the Section 5 service whose Table 5 speedup
#: reprices the stage.  Glue stages (CLASSIFY, ROUTER) have no entry and
#: never accelerate — they are part of the tax argument.
SERVICE_SPEEDUP_KEYS: Dict[str, str] = {"ASR": ASR_GMM, "QA": QA, "IMM": IMM}

#: Fallback operational intensity when a span recorded flops but no bytes.
_DEFAULT_INTENSITY = 1.0

#: Per-query entries included verbatim in reports (totals always cover all).
DEFAULT_QUERY_LIMIT = 12

_GIGA = 1e9


# -- time models --------------------------------------------------------------------

def stage_time_scale(stage: str, platform: str) -> float:
    """Service-stage time on ``platform`` relative to the CMP baseline.

    ``(1 + transfer_overhead) / relative_speedup`` with the relative
    speedup read from the Amdahl-composed Table 5 service speedups; CMP is
    exactly 1.0, and unmapped (glue) stages never accelerate.
    """
    key = SERVICE_SPEEDUP_KEYS.get(stage)
    if key is None:
        return 1.0
    relative = service_speedup(key, platform) / service_speedup(key, CMP)
    return (1.0 + spec(platform).transfer_overhead) / relative


def _cmp_compute_seconds(counters: WorkCounters) -> float:
    """Modeled CMP seconds for a counter total (roofline at measured intensity)."""
    if counters.flops <= 0:
        return 0.0
    intensity = counters.intensity if counters.bytes else _DEFAULT_INTENSITY
    return counters.flops / _GIGA / attainable_for_intensity(intensity, CMP)


def service_compute_seconds(
    counters: WorkCounters, stage: str, platform: str
) -> float:
    """Modeled seconds of a service stage's counter work on ``platform``."""
    return _cmp_compute_seconds(counters) * stage_time_scale(stage, platform)


def kernel_compute_seconds(
    counters: WorkCounters, kernel: str, platform: str
) -> float:
    """Modeled seconds of a Sirius Suite kernel span on ``platform``.

    Suite traces carry no service stage, so they are repriced directly on
    the roofline: attainable GFLOP/s at the *measured* intensity (falling
    back to the kernel's analytic profile) and the kernel's per-platform
    SIMD friendliness, plus the accelerator's transfer overhead.
    """
    if counters.flops <= 0:
        return 0.0
    profile = KERNEL_PROFILES.get(kernel)
    friendliness = profile.simd_friendliness if profile else 1.0
    if counters.bytes:
        intensity = counters.intensity
    else:
        intensity = (
            profile.operational_intensity if profile else _DEFAULT_INTENSITY
        )
    seconds = counters.flops / _GIGA / attainable_for_intensity(
        intensity, platform, friendliness
    )
    if platform != CMP:
        seconds *= 1.0 + spec(platform).transfer_overhead
    return seconds


# -- ledger data model --------------------------------------------------------------

@dataclass(frozen=True)
class LedgerEntry:
    """One (stage, category) attribution inside one query."""

    stage: str
    category: str
    seconds: float
    microjoules: int
    dollars: float
    counters: WorkCounters = WorkCounters()
    events: int = 0


@dataclass(frozen=True)
class QueryCost:
    """One query's full attribution; totals are exact sums of the entries."""

    trace_id: str
    ordinal: int
    outcome: str   #: "ok" | "degraded" | "failed" | "rejected"
    entries: Tuple[LedgerEntry, ...]

    @property
    def microjoules(self) -> int:
        return sum(entry.microjoules for entry in self.entries)

    @property
    def dollars(self) -> float:
        return math.fsum(entry.dollars for entry in self.entries)


@dataclass(frozen=True)
class CategoryTotal:
    """Ledger-wide totals for one category (or one stage x category)."""

    seconds: float = 0.0
    microjoules: int = 0
    dollars: float = 0.0
    events: int = 0

    def fold(self, entry: LedgerEntry) -> "CategoryTotal":
        return CategoryTotal(
            seconds=self.seconds + entry.seconds,
            microjoules=self.microjoules + entry.microjoules,
            dollars=self.dollars + entry.dollars,
            events=self.events + entry.events,
        )


@dataclass(frozen=True)
class CostLedger:
    """The full attribution of one trace set (or replay) on one platform."""

    platform: str
    source: str    #: "spans" | "replay"
    queries: Tuple[QueryCost, ...]
    parameters: TCOParameters = field(default_factory=TCOParameters)

    @property
    def total_microjoules(self) -> int:
        return sum(query.microjoules for query in self.queries)

    @property
    def total_dollars(self) -> float:
        # One flat fsum over every entry — bit-identical to summing the
        # entries directly, which nesting per-query fsums would not be.
        return math.fsum(
            entry.dollars
            for query in self.queries
            for entry in query.entries
        )

    def category_totals(self) -> Dict[str, CategoryTotal]:
        totals = {category: CategoryTotal() for category in CATEGORIES}
        for query in self.queries:
            for entry in query.entries:
                totals[entry.category] = totals[entry.category].fold(entry)
        return totals

    def stage_totals(self) -> Dict[Tuple[str, str], CategoryTotal]:
        """(stage, category) -> totals, deterministically ordered."""
        totals: Dict[Tuple[str, str], CategoryTotal] = {}
        for query in self.queries:
            for entry in query.entries:
                key = (entry.stage, entry.category)
                totals[key] = totals.get(key, CategoryTotal()).fold(entry)
        return {key: totals[key] for key in sorted(totals)}

    def tax_microjoules(self) -> int:
        totals = self.category_totals()
        return sum(totals[category].microjoules for category in TAX_CATEGORIES)

    def tax_dollars(self) -> float:
        totals = self.category_totals()
        return math.fsum(totals[category].dollars for category in TAX_CATEGORIES)


# -- building a ledger from a span forest -------------------------------------------

def _query_outcome(root) -> str:
    if root.status == "error" or root.attributes.get("failed"):
        return "failed"
    if root.attributes.get("degraded"):
        return "degraded"
    return "ok"


class _EntryAccumulator:
    """Folds one query's spans into (stage, category) buckets."""

    def __init__(self) -> None:
        self.buckets: Dict[Tuple[str, str, bool], List] = {}

    def add(
        self,
        stage: str,
        category: str,
        kernel: bool = False,
        stall_seconds: float = 0.0,
        counters: WorkCounters = WorkCounters(),
        events: int = 0,
    ) -> None:
        key = (stage, category, kernel)
        bucket = self.buckets.get(key)
        if bucket is None:
            bucket = [0.0, WorkCounters(), 0]
            self.buckets[key] = bucket
        bucket[0] += stall_seconds
        bucket[1] = bucket[1] + counters
        bucket[2] += events

    def entries(
        self, platform: str, rate: float
    ) -> Tuple[LedgerEntry, ...]:
        entries = []
        for (stage, category, kernel) in sorted(self.buckets):
            stall, counters, events = self.buckets[(stage, category, kernel)]
            if kernel:
                work = kernel_compute_seconds(counters, stage, platform)
            else:
                work = service_compute_seconds(counters, stage, platform)
            seconds = stall + work
            if seconds == 0.0 and counters.invocations == 0 and events == 0:
                continue
            entries.append(
                LedgerEntry(
                    stage=stage,
                    category=category,
                    seconds=seconds,
                    microjoules=energy_microjoules(platform, seconds),
                    dollars=seconds * rate,
                    counters=counters,
                    events=events,
                )
            )
        return tuple(entries)


def ledger_from_spans(
    spans: Sequence,
    platform: str = CMP,
    parameters: Optional[TCOParameters] = None,
) -> CostLedger:
    """Fold a deterministic span forest into a :class:`CostLedger`.

    Only seed-deterministic span fields are read (kinds, status, parent
    links, attributes — counters and ``virtual_seconds``), never wall
    clocks, so the same chaos run ledgers byte-identically on every
    execution backend.
    """
    if platform not in PLATFORMS:
        raise ObsError(f"unknown platform {platform!r}; expected {PLATFORMS}")
    parameters = parameters if parameters is not None else TCOParameters()
    rate = dollars_per_server_second(platform, parameters)
    ordered = sorted(spans, key=sort_key)
    by_id = {span.span_id: span for span in ordered}
    wasted = wasted_span_ids(ordered)

    def enclosing_service(span):
        node = span
        while node is not None:
            if node.kind == SERVICE:
                return node
            node = by_id.get(node.parent_id)
        return None

    def stage_of(span) -> Tuple[str, bool]:
        service = enclosing_service(span)
        if service is not None:
            return service.service or service.name, False
        if span.kind == KERNEL:
            return span.attributes.get("kernel", span.name), True
        return span.service or span.name, False

    traces: Dict[str, List] = {}
    roots: Dict[str, object] = {}
    for span in ordered:
        traces.setdefault(span.trace_id, []).append(span)
        if span.kind == QUERY:
            roots[span.trace_id] = span

    queries: List[QueryCost] = []
    trace_order = sorted(
        traces,
        key=lambda t: (roots[t].ordinal if t in roots else 0, t),
    )
    for trace_id in trace_order:
        members = traces[trace_id]
        root = roots.get(trace_id)
        outcome = _query_outcome(root) if root is not None else "ok"
        acc = _EntryAccumulator()
        for span in members:
            is_wasted = span.span_id in wasted

            def wasted_category(span=span) -> str:
                service = enclosing_service(span)
                if (
                    outcome == "degraded"
                    and service is not None
                    and service.status == "error"
                ):
                    return DEGRADED
                return RETRIES

            if span.kind == ROUTER:
                seconds = float(span.attributes.get("virtual_seconds", 0.0))
                category = wasted_category() if is_wasted else ROUTER_WAIT
                acc.add("ROUTER", category, stall_seconds=seconds, events=1)
                continue
            if span.kind == SERVICE:
                virtual = span.attributes.get("virtual_seconds")
                if virtual:
                    stage, _ = stage_of(span)
                    category = wasted_category() if is_wasted else QUEUEING
                    acc.add(stage, category, stall_seconds=float(virtual))
            counters = counters_of(span.attributes)
            if counters.invocations or counters.flops or counters.bytes:
                stage, kernel = stage_of(span)
                category = wasted_category() if is_wasted else COMPUTE
                acc.add(
                    stage, category, kernel=kernel,
                    counters=counters, events=1,
                )
        queries.append(
            QueryCost(
                trace_id=trace_id,
                ordinal=root.ordinal if root is not None else 0,
                outcome=outcome,
                entries=acc.entries(platform, rate),
            )
        )
    return CostLedger(
        platform=platform, source="spans",
        queries=tuple(queries), parameters=parameters,
    )


# -- building a ledger from a cluster replay ----------------------------------------

def replay_mix_scale(platform: str) -> float:
    """Replay time scale: the mean of the mapped service stage scales.

    The virtual replay samples one opaque service time per query, so the
    what-if repricing assumes a uniform mix of the paper services (ASR,
    QA, IMM) and scales the busy time by their average Table 5 factor.
    """
    scales = [
        stage_time_scale(stage, platform) for stage in sorted(SERVICE_SPEEDUP_KEYS)
    ]
    return math.fsum(scales) / len(scales)


def ledger_from_replay(
    result,
    platform: str = CMP,
    parameters: Optional[TCOParameters] = None,
) -> CostLedger:
    """Price a :class:`~repro.serving.cluster.replay.ReplayResult`.

    Admitted queries attribute their sampled service seconds (scaled by
    :func:`replay_mix_scale`) to ``compute`` and their queue wait to
    ``router_wait`` — the replay's wait *is* router queueing.  Shed
    arrivals become zero-second ``retries`` entries so rejected work is a
    visible (countable) line even though it burned no modeled joules.
    """
    if platform not in PLATFORMS:
        raise ObsError(f"unknown platform {platform!r}; expected {PLATFORMS}")
    parameters = parameters if parameters is not None else TCOParameters()
    rate = dollars_per_server_second(platform, parameters)
    scale = replay_mix_scale(platform)
    queries: List[QueryCost] = []
    for outcome in result.outcomes:
        trace_id = f"replay-{outcome.ordinal}"
        if not outcome.admitted:
            entry = LedgerEntry(
                stage="ROUTER", category=RETRIES,
                seconds=0.0, microjoules=0, dollars=0.0, events=1,
            )
            queries.append(
                QueryCost(
                    trace_id=trace_id, ordinal=outcome.ordinal,
                    outcome="rejected", entries=(entry,),
                )
            )
            continue
        busy = outcome.service * scale
        entries = [
            LedgerEntry(
                stage="service", category=COMPUTE,
                seconds=busy,
                microjoules=energy_microjoules(platform, busy),
                dollars=busy * rate,
                events=1,
            )
        ]
        if outcome.wait > 0.0:
            entries.append(
                LedgerEntry(
                    stage="ROUTER", category=ROUTER_WAIT,
                    seconds=outcome.wait,
                    microjoules=energy_microjoules(platform, outcome.wait),
                    dollars=outcome.wait * rate,
                    events=1,
                )
            )
        queries.append(
            QueryCost(
                trace_id=trace_id, ordinal=outcome.ordinal,
                outcome="ok", entries=tuple(entries),
            )
        )
    return CostLedger(
        platform=platform, source="replay",
        queries=tuple(queries), parameters=parameters,
    )


# -- what-if repricing --------------------------------------------------------------

@dataclass(frozen=True)
class WhatIfRow:
    """One platform's repriced totals over the same trace."""

    platform: str
    compute_microjoules: int
    tax_microjoules: int
    compute_dollars: float
    tax_dollars: float

    @property
    def total_microjoules(self) -> int:
        return self.compute_microjoules + self.tax_microjoules

    @property
    def total_dollars(self) -> float:
        return math.fsum((self.compute_dollars, self.tax_dollars))


def reprice(
    build_ledger: Callable[[str], CostLedger],
    platforms: Sequence[str] = PLATFORMS,
) -> Tuple[WhatIfRow, ...]:
    """Re-run a ledger builder per platform and summarize the what-ifs."""
    rows = []
    for platform in platforms:
        ledger = build_ledger(platform)
        totals = ledger.category_totals()
        rows.append(
            WhatIfRow(
                platform=platform,
                compute_microjoules=totals[COMPUTE].microjoules,
                tax_microjoules=ledger.tax_microjoules(),
                compute_dollars=totals[COMPUTE].dollars,
                tax_dollars=ledger.tax_dollars(),
            )
        )
    return tuple(rows)


def stage_compute_dollars(
    build_ledger: Callable[[str], CostLedger],
    platforms: Sequence[str] = PLATFORMS,
) -> Dict[str, Dict[str, float]]:
    """stage -> platform -> served-compute dollars (the Fig 18 analogue)."""
    table: Dict[str, Dict[str, float]] = {}
    for platform in platforms:
        ledger = build_ledger(platform)
        for (stage, category), total in ledger.stage_totals().items():
            if category != COMPUTE:
                continue
            table.setdefault(stage, {})[platform] = total.dollars
    return {stage: table[stage] for stage in sorted(table)}


def fig18_reference_order(
    service_key: str, parameters: Optional[TCOParameters] = None
) -> Tuple[str, ...]:
    """Platforms cheapest-first by Figure 18's normalized TCO for a service."""
    from repro.platforms.model import AcceleratorModel

    model = AcceleratorModel()
    tco = TCOModel(parameters) if parameters is not None else TCOModel()
    return tuple(
        sorted(
            PLATFORMS,
            key=lambda platform: tco.normalized_tco(
                platform, model.throughput_improvement(service_key, platform)
            ),
        )
    )


def ledger_rank_order(platform_dollars: Mapping[str, float]) -> Tuple[str, ...]:
    """Platforms cheapest-first by repriced ledger dollars."""
    return tuple(
        sorted(platform_dollars, key=lambda platform: platform_dollars[platform])
    )


# -- fleet extrapolation ------------------------------------------------------------

@dataclass(frozen=True)
class FleetCostRow:
    """One platform's million-query-day bill."""

    platform: str
    n_servers: int
    compute_microjoules: int
    tax_microjoules: int
    dollars: float        #: provisioned fleet TCO over the window
    tax_dollars: float    #: the AI-tax line item (busy-second priced)

    @property
    def total_microjoules(self) -> int:
        return self.compute_microjoules + self.tax_microjoules

    @property
    def tax_share(self) -> float:
        total = self.total_microjoules
        return self.tax_microjoules / total if total else 0.0


@dataclass(frozen=True)
class FleetCost:
    """The extrapolated per-platform fleet bill for a target volume."""

    target_queries: int
    window_seconds: float
    rows: Tuple[FleetCostRow, ...]


def fleet_costs(
    build_ledger: Callable[[str], CostLedger],
    target_queries: int = 1_000_000,
    window_seconds: float = 86_400.0,
    platforms: Sequence[str] = PLATFORMS,
    per_replica_rate: Optional[float] = None,
) -> FleetCost:
    """Extrapolate a measured ledger to ``target_queries`` per window.

    Energy and attributed dollars scale linearly (target / measured
    queries — the cluster replay's scale-invariance argument).  Server
    counts come from ``per_replica_rate`` when a replay measured one
    (each replica's sustainable rate shrinks by the platform's busy-time
    scale), else from busy-second occupancy at the Table 7 average
    utilization.
    """
    if target_queries < 1 or window_seconds <= 0:
        raise ObsError("need target_queries >= 1 and a positive window")
    rows = []
    for platform in platforms:
        ledger = build_ledger(platform)
        n_measured = len(ledger.queries)
        if n_measured == 0:
            raise ObsError("cannot extrapolate from an empty ledger")
        scale = target_queries / n_measured
        totals = ledger.category_totals()
        compute_uj = int(round(totals[COMPUTE].microjoules * scale))
        tax_uj = int(round(ledger.tax_microjoules() * scale))
        busy_seconds = math.fsum(
            totals[category].seconds for category in CATEGORIES
        ) * scale
        if per_replica_rate is not None:
            platform_rate = per_replica_rate / replay_mix_scale(platform)
            n_servers = max(
                int(math.ceil(target_queries / window_seconds / platform_rate)),
                1,
            )
        else:
            utilization = ledger.parameters.average_utilization
            n_servers = max(
                int(math.ceil(busy_seconds / (window_seconds * utilization))), 1
            )
        rate = dollars_per_server_second(platform, ledger.parameters)
        rows.append(
            FleetCostRow(
                platform=platform,
                n_servers=n_servers,
                compute_microjoules=compute_uj,
                tax_microjoules=tax_uj,
                dollars=n_servers * window_seconds * rate,
                tax_dollars=ledger.tax_dollars() * scale,
            )
        )
    return FleetCost(
        target_queries=target_queries,
        window_seconds=window_seconds,
        rows=tuple(rows),
    )


def fleet_cost_panel(
    ledger: CostLedger,
    replica_timeline: Sequence[Tuple[int, int]] = (),
    tick_seconds: float = 0.0,
) -> Dict:
    """The fleet report's cost panel: one JSON-ready dict of plain values.

    Attributed figures come from the ledger; when a replay's autoscaler
    timeline is supplied, the *provisioned* trajectory is priced too —
    every replica-second the autoscaler kept powered, whether or not a
    query used it — so over-provisioning shows up as the gap between the
    two dollar lines.
    """
    total_uj = ledger.total_microjoules
    panel = {
        "platform": ledger.platform,
        "queries": len(ledger.queries),
        "microjoules": total_uj,
        "tco_dollars": ledger.total_dollars,
        "electricity_dollars": electricity_dollars(total_uj, ledger.parameters),
        "tax_microjoules": ledger.tax_microjoules(),
        "tax_dollars": ledger.tax_dollars(),
        "tax_share": ledger.tax_microjoules() / total_uj if total_uj else 0.0,
        "provisioned_replica_seconds": None,
        "provisioned_dollars": None,
        "provisioned_microjoules": None,
    }
    if replica_timeline and tick_seconds > 0:
        provisioned = math.fsum(
            count * tick_seconds for _, count in replica_timeline
        )
        rate = dollars_per_server_second(ledger.platform, ledger.parameters)
        panel["provisioned_replica_seconds"] = provisioned
        panel["provisioned_dollars"] = provisioned * rate
        panel["provisioned_microjoules"] = energy_microjoules(
            ledger.platform, provisioned
        )
    return panel


# -- the report ---------------------------------------------------------------------

@dataclass(frozen=True)
class CostReport:
    """Everything ``repro cost-report`` renders, already evaluated."""

    ledger: CostLedger
    what_if: Tuple[WhatIfRow, ...]
    stage_dollars: Dict[str, Dict[str, float]]
    fleet: Optional[FleetCost] = None
    query_limit: int = DEFAULT_QUERY_LIMIT


def cost_report_from_spans(
    spans: Sequence,
    platform: str = CMP,
    parameters: Optional[TCOParameters] = None,
    fleet: bool = False,
    target_queries: int = 1_000_000,
    window_seconds: float = 86_400.0,
    query_limit: int = DEFAULT_QUERY_LIMIT,
) -> CostReport:
    """Evaluate a span forest end to end (ledger, what-ifs, optional fleet)."""
    def build(p: str) -> CostLedger:
        return ledger_from_spans(spans, platform=p, parameters=parameters)

    return CostReport(
        ledger=build(platform),
        what_if=reprice(build),
        stage_dollars=stage_compute_dollars(build),
        fleet=(
            fleet_costs(
                build, target_queries=target_queries,
                window_seconds=window_seconds,
            )
            if fleet else None
        ),
        query_limit=query_limit,
    )


def cost_report_from_replay(
    result,
    platform: str = CMP,
    parameters: Optional[TCOParameters] = None,
    fleet: bool = False,
    target_queries: int = 1_000_000,
    window_seconds: float = 86_400.0,
    query_limit: int = DEFAULT_QUERY_LIMIT,
) -> CostReport:
    """Evaluate a cluster replay end to end, extrapolating via its rates."""
    from repro.serving.cluster.replay import extrapolate_fleet

    def build(p: str) -> CostLedger:
        return ledger_from_replay(result, platform=p, parameters=parameters)

    per_replica = None
    if fleet and result.n_admitted:
        per_replica = extrapolate_fleet(
            result, target_queries=target_queries,
            window_seconds=window_seconds,
        ).per_replica_rate
    return CostReport(
        ledger=build(platform),
        what_if=reprice(build),
        stage_dollars=stage_compute_dollars(build),
        fleet=(
            fleet_costs(
                build, target_queries=target_queries,
                window_seconds=window_seconds,
                per_replica_rate=per_replica,
            )
            if fleet else None
        ),
        query_limit=query_limit,
    )


# -- rendering ----------------------------------------------------------------------

def format_energy(microjoules: int) -> str:
    """Human-scaled energy; integers stay exact below a millijoule."""
    absolute = abs(microjoules)
    if absolute >= 10**9:
        return f"{microjoules / 10**9:.3f} kJ"
    if absolute >= 10**6:
        return f"{microjoules / 10**6:.3f} J"
    if absolute >= 10**3:
        return f"{microjoules / 10**3:.3f} mJ"
    return f"{microjoules} uJ"


def _overview_rows(report: CostReport) -> List[List[str]]:
    ledger = report.ledger
    outcomes: Dict[str, int] = {}
    for query in ledger.queries:
        outcomes[query.outcome] = outcomes.get(query.outcome, 0) + 1
    rows = [
        ["source", ledger.source],
        ["platform", ledger.platform],
        ["queries", str(len(ledger.queries))],
    ]
    for outcome in sorted(outcomes):
        rows.append([f"  {outcome}", str(outcomes[outcome])])
    total = ledger.total_microjoules
    rows.append(["energy", format_energy(total)])
    rows.append(["dollars (TCO-amortized)", f"${ledger.total_dollars:.8f}"])
    rows.append([
        "dollars (electricity only)",
        f"${electricity_dollars(total, ledger.parameters):.8f}",
    ])
    tax = ledger.tax_microjoules()
    rows.append([
        "AI tax share",
        f"{tax / total:.1%}" if total else "-",
    ])
    return rows


def _category_rows(report: CostReport) -> List[List[str]]:
    totals = report.ledger.category_totals()
    grand = report.ledger.total_microjoules
    rows = []
    for category in CATEGORIES:
        total = totals[category]
        share = total.microjoules / grand if grand else 0.0
        rows.append([
            category,
            f"{total.seconds:.6f}",
            format_energy(total.microjoules),
            f"${total.dollars:.8f}",
            str(total.events),
            f"{share:.1%}",
        ])
    return rows


def _stage_rows(report: CostReport) -> List[List[str]]:
    rows = []
    for (stage, category), total in report.ledger.stage_totals().items():
        rows.append([
            stage, category,
            f"{total.seconds:.6f}",
            format_energy(total.microjoules),
            f"${total.dollars:.8f}",
        ])
    return rows


def _what_if_rows(report: CostReport) -> List[List[str]]:
    ranked = {
        row.platform: rank + 1
        for rank, row in enumerate(
            sorted(report.what_if, key=lambda row: row.total_dollars)
        )
    }
    rows = []
    for row in report.what_if:
        rows.append([
            row.platform,
            format_energy(row.compute_microjoules),
            format_energy(row.tax_microjoules),
            f"${row.compute_dollars:.8f}",
            f"${row.total_dollars:.8f}",
            str(ranked[row.platform]),
        ])
    return rows


def _fleet_rows(fleet: FleetCost) -> List[List[str]]:
    rows = []
    for row in fleet.rows:
        rows.append([
            row.platform,
            str(row.n_servers),
            format_energy(row.total_microjoules),
            f"${row.dollars:,.2f}",
            f"${row.tax_dollars:,.2f}",
            f"{row.tax_share:.1%}",
        ])
    return rows


def _query_rows(report: CostReport) -> List[List[str]]:
    rows = []
    for query in report.ledger.queries[: report.query_limit]:
        top = max(
            query.entries, key=lambda e: e.microjoules, default=None
        )
        rows.append([
            str(query.ordinal),
            query.outcome,
            format_energy(query.microjoules),
            f"${query.dollars:.8f}",
            f"{top.stage}/{top.category}" if top is not None else "-",
        ])
    return rows


def render_cost_report(report: CostReport) -> str:
    """The deterministic text ledger."""
    # Imported here, not at module top: repro.analysis pulls in profiling,
    # which imports repro.obs — a top-level import would be circular.
    from repro.analysis import format_table

    sections = [
        format_table("Cost & energy ledger", ["Metric", "Value"],
                     _overview_rows(report)),
        format_table(
            "AI tax decomposition",
            ["Category", "Seconds", "Energy", "Dollars", "Events", "Share"],
            _category_rows(report),
        ),
    ]
    stage_rows = _stage_rows(report)
    if stage_rows:
        sections.append(format_table(
            "Per-stage attribution",
            ["Stage", "Category", "Seconds", "Energy", "Dollars"],
            stage_rows,
        ))
    query_rows = _query_rows(report)
    if query_rows:
        shown = len(query_rows)
        total = len(report.ledger.queries)
        title = (
            f"Per-query ledger (first {shown} of {total})"
            if total > shown else "Per-query ledger"
        )
        sections.append(format_table(
            title, ["Query", "Outcome", "Energy", "Dollars", "Top entry"],
            query_rows,
        ))
    sections.append(format_table(
        "Platform what-if repricing (same trace, Table 5 + roofline)",
        ["Platform", "Compute", "AI tax", "Compute $", "Total $", "Rank"],
        _what_if_rows(report),
    ))
    if report.fleet is not None:
        fleet = report.fleet
        sections.append(format_table(
            f"Fleet @ {fleet.target_queries:,} queries / "
            f"{fleet.window_seconds / 3600.0:g} h",
            ["Platform", "Servers", "Energy", "Fleet TCO", "AI tax $",
             "Tax share"],
            _fleet_rows(fleet),
        ))
    return "\n\n".join(sections) + "\n"


# -- canonical JSON -----------------------------------------------------------------

def _entry_dict(entry: LedgerEntry) -> Dict:
    return {
        "stage": entry.stage,
        "category": entry.category,
        "seconds": entry.seconds,
        "microjoules": entry.microjoules,
        "dollars": entry.dollars,
        "events": entry.events,
        "counters": entry.counters.as_dict(),
    }


def report_to_dict(report: CostReport) -> Dict:
    """The JSON-ready projection of a report (plain types only)."""
    ledger = report.ledger
    categories = {
        category: {
            "seconds": total.seconds,
            "microjoules": total.microjoules,
            "dollars": total.dollars,
            "events": total.events,
        }
        for category, total in ledger.category_totals().items()
    }
    stages: Dict[str, Dict] = {}
    for (stage, category), total in ledger.stage_totals().items():
        stages.setdefault(stage, {})[category] = {
            "seconds": total.seconds,
            "microjoules": total.microjoules,
            "dollars": total.dollars,
            "events": total.events,
        }
    payload = {
        "schema": SCHEMA,
        "source": ledger.source,
        "platform": ledger.platform,
        "n_queries": len(ledger.queries),
        "total_microjoules": ledger.total_microjoules,
        "total_dollars": ledger.total_dollars,
        "electricity_dollars": electricity_dollars(
            ledger.total_microjoules, ledger.parameters
        ),
        "tax_microjoules": ledger.tax_microjoules(),
        "tax_dollars": ledger.tax_dollars(),
        "categories": categories,
        "stages": stages,
        "queries": [
            {
                "trace_id": query.trace_id,
                "ordinal": query.ordinal,
                "outcome": query.outcome,
                "microjoules": query.microjoules,
                "dollars": query.dollars,
                "entries": [_entry_dict(entry) for entry in query.entries],
            }
            for query in ledger.queries[: report.query_limit]
        ],
        "queries_rendered": min(len(ledger.queries), report.query_limit),
        "what_if": [
            {
                "platform": row.platform,
                "compute_microjoules": row.compute_microjoules,
                "tax_microjoules": row.tax_microjoules,
                "total_microjoules": row.total_microjoules,
                "compute_dollars": row.compute_dollars,
                "tax_dollars": row.tax_dollars,
                "total_dollars": row.total_dollars,
            }
            for row in report.what_if
        ],
        "stage_compute_dollars": report.stage_dollars,
        "fleet": None,
    }
    if report.fleet is not None:
        fleet = report.fleet
        payload["fleet"] = {
            "target_queries": fleet.target_queries,
            "window_seconds": fleet.window_seconds,
            "rows": [
                {
                    "platform": row.platform,
                    "n_servers": row.n_servers,
                    "compute_microjoules": row.compute_microjoules,
                    "tax_microjoules": row.tax_microjoules,
                    "total_microjoules": row.total_microjoules,
                    "dollars": row.dollars,
                    "tax_dollars": row.tax_dollars,
                    "tax_share": row.tax_share,
                }
                for row in fleet.rows
            ],
        }
    return payload


def report_to_json(report: CostReport) -> str:
    """Canonical JSON (sorted keys, 2-space indent, trailing newline)."""
    return json.dumps(report_to_dict(report), sort_keys=True, indent=2) + "\n"
