"""Windowed metric rollups over virtual time.

At fleet scale the end-of-run aggregate is the wrong unit of observability
— the tail-at-scale literature's signals (burning error budgets, windowed
p99s, a replica draining behind the others) are all *time-local*.  This
module is the bounded-cost answer: a :class:`RollupStore` buckets every
metric into fixed-width windows of **virtual time** (replay seconds, or
stream ordinals for span exports — never wall clocks), keyed by metric ×
label set, so the cluster replay driver and the live fleet can emit
per-tick series instead of one number per run.

Two cell kinds:

- **counters** — exact integer sums per ``(metric, labels, window)``;
- **value panels** — per-window distributions (queue depth, router wait,
  service seconds ...) carried as the same deterministic bottom-k
  ``(value, weight)`` reservoir the metrics layer uses
  (:mod:`repro.obs.metrics`), plus exact ``observed``/``min``/``max``.

Everything follows the registry's snapshot/merge discipline:
:meth:`RollupStore.snapshot` is picklable and canonically sorted, and
:func:`merge_rollup_snapshots` is associative, commutative, and
fsum-exact — counters add, reservoirs union value-wise and re-apply the
shared bottom-k rule, min/max fold — so per-replica rollups produced by
process workers merge into one fleet view in any order, byte-identically
(the property suite splits streams across window boundaries and checks
exactly this).

:func:`rollups_from_spans` projects a deterministic (timing-stripped)
span export onto rollups using the stream ordinal as the virtual clock,
which is what lets ``repro fleet-report`` render the same windowed
dashboard from a live chaos run on any backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, TraceError
from repro.obs.metrics import (
    DEFAULT_MAX_SAMPLES,
    _canonical_reservoir,
    _weighted_percentile,
)
from repro.obs.trace import QUERY, ROUTER, SERVICE

#: Label sets are canonicalized to sorted (key, value) string pairs.
Labels = Tuple[Tuple[str, str], ...]

#: Default rollup window width (matches the autoscaler's default tick).
DEFAULT_WINDOW_SECONDS = 5.0


def canonical_labels(labels: Mapping[str, Union[str, int, float]]) -> Labels:
    """Sorted, stringified (key, value) pairs — the canonical label form."""
    return tuple(
        (key, str(labels[key])) for key in sorted(labels)
    )


@dataclass(frozen=True)
class RollupCounter:
    """One counter cell: exact event count in one window."""

    metric: str
    labels: Labels
    window: int
    value: int


@dataclass(frozen=True)
class RollupPanel:
    """One value-panel cell: a bounded per-window distribution.

    ``samples``/``weights`` are the deterministic bottom-k reservoir
    (sorted distinct values with observation counts); ``observed``,
    ``minimum`` and ``maximum`` are exact at any volume.
    """

    metric: str
    labels: Labels
    window: int
    observed: int
    minimum: float
    maximum: float
    samples: Tuple[float, ...]
    weights: Tuple[int, ...]
    total: float

    @property
    def kept(self) -> int:
        return sum(self.weights)

    @property
    def mean(self) -> float:
        kept = self.kept
        return self.total / kept if kept else 0.0

    def percentile(self, p: float) -> float:
        return _weighted_percentile(self.samples, self.weights, p)


@dataclass(frozen=True)
class RollupSnapshot:
    """Picklable, mergeable state of a whole rollup store.

    Cells are canonically sorted by ``(metric, labels, window)``, so equal
    observation multisets produce byte-equal snapshots whatever order —
    or worker process — recorded them.
    """

    window_seconds: float
    max_samples: int
    reservoir_seed: int
    counters: Tuple[RollupCounter, ...] = ()
    panels: Tuple[RollupPanel, ...] = ()

    def windows(self) -> Tuple[int, ...]:
        """All window indices with any data, ascending."""
        seen = {cell.window for cell in self.counters}
        seen.update(cell.window for cell in self.panels)
        return tuple(sorted(seen))

    def metrics(self) -> Tuple[str, ...]:
        """All metric names present, sorted."""
        seen = {cell.metric for cell in self.counters}
        seen.update(cell.metric for cell in self.panels)
        return tuple(sorted(seen))

    def counter_cells(self, metric: str) -> Tuple[RollupCounter, ...]:
        return tuple(cell for cell in self.counters if cell.metric == metric)

    def panel_cells(self, metric: str) -> Tuple[RollupPanel, ...]:
        return tuple(cell for cell in self.panels if cell.metric == metric)

    def counter_total(self, metric: str, **labels) -> int:
        """Sum of a counter across all windows (optionally label-filtered)."""
        want = canonical_labels(labels)
        return sum(
            cell.value
            for cell in self.counter_cells(metric)
            if _labels_match(cell.labels, want)
        )

    def counter_by_window(self, metric: str, **labels) -> Dict[int, int]:
        """Window → summed counter value (labels collapsed unless given)."""
        want = canonical_labels(labels)
        series: Dict[int, int] = {}
        for cell in self.counter_cells(metric):
            if _labels_match(cell.labels, want):
                series[cell.window] = series.get(cell.window, 0) + cell.value
        return series

    def panel_by_window(self, metric: str, **labels) -> Dict[int, RollupPanel]:
        """Window → merged panel cell (labels collapsed unless given)."""
        want = canonical_labels(labels)
        grouped: Dict[int, List[RollupPanel]] = {}
        for cell in self.panel_cells(metric):
            if _labels_match(cell.labels, want):
                grouped.setdefault(cell.window, []).append(cell)
        return {
            window: _merge_panel_group(metric, (), window, cells,
                                       self.max_samples, self.reservoir_seed)
            for window, cells in grouped.items()
        }

    def merged_panel(self, metric: str, **labels) -> Optional[RollupPanel]:
        """One panel folding every matching cell across all windows."""
        want = canonical_labels(labels)
        cells = [
            cell for cell in self.panel_cells(metric)
            if _labels_match(cell.labels, want)
        ]
        if not cells:
            return None
        return _merge_panel_group(
            metric, want, -1, cells, self.max_samples, self.reservoir_seed
        )


def _labels_match(have: Labels, want: Labels) -> bool:
    """True when every wanted (key, value) pair appears in ``have``."""
    pairs = dict(have)
    return all(pairs.get(key) == value for key, value in want)


def _merge_panel_group(
    metric: str,
    labels: Labels,
    window: int,
    cells: Sequence[RollupPanel],
    max_samples: int,
    seed: int,
) -> RollupPanel:
    pool: Dict[float, int] = {}
    for cell in cells:
        for value, weight in zip(cell.samples, cell.weights):
            pool[value] = pool.get(value, 0) + weight
    samples, weights, total = _canonical_reservoir(pool, max_samples, seed)
    return RollupPanel(
        metric=metric,
        labels=labels,
        window=window,
        observed=sum(cell.observed for cell in cells),
        minimum=min(cell.minimum for cell in cells),
        maximum=max(cell.maximum for cell in cells),
        samples=samples,
        weights=weights,
        total=total,
    )


def merge_rollup_snapshots(a: RollupSnapshot, b: RollupSnapshot) -> RollupSnapshot:
    """Combine two rollup snapshots (associative, commutative, exact).

    Counters add per cell; panels union their reservoirs value-wise and
    re-apply the shared bottom-k rule; min/max/observed fold exactly.  The
    result is a pure function of the pooled observation multiset, so any
    merge tree over the same shards yields byte-identical snapshots.
    """
    if (
        a.window_seconds != b.window_seconds
        or a.max_samples != b.max_samples
        or a.reservoir_seed != b.reservoir_seed
    ):
        raise TraceError(
            "cannot merge rollup snapshots with mismatched window/reservoir "
            "configuration"
        )
    counters: Dict[Tuple[str, Labels, int], int] = {}
    for snapshot in (a, b):
        for cell in snapshot.counters:
            key = (cell.metric, cell.labels, cell.window)
            counters[key] = counters.get(key, 0) + cell.value
    panels: Dict[Tuple[str, Labels, int], List[RollupPanel]] = {}
    for snapshot in (a, b):
        for cell in snapshot.panels:
            panels.setdefault((cell.metric, cell.labels, cell.window), []).append(cell)
    return RollupSnapshot(
        window_seconds=a.window_seconds,
        max_samples=a.max_samples,
        reservoir_seed=a.reservoir_seed,
        counters=tuple(
            RollupCounter(metric=metric, labels=labels, window=window,
                          value=counters[(metric, labels, window)])
            for metric, labels, window in sorted(counters)
        ),
        panels=tuple(
            _merge_panel_group(
                metric, labels, window,
                panels[(metric, labels, window)],
                a.max_samples, a.reservoir_seed,
            )
            for metric, labels, window in sorted(panels)
        ),
    )


class RollupStore:
    """Accumulates windowed counters and value panels over virtual time.

    ``window_seconds`` fixes the bucket width; a timestamp ``t`` (virtual
    seconds, or a stream ordinal when projecting span exports) lands in
    window ``floor(t / window_seconds)``.  Not thread-safe by design: the
    emitters (replay driver, parent-side fleet recording) are all
    single-threaded folds, and cross-process aggregation goes through
    snapshot/merge like the metrics registry.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        reservoir_seed: int = 0,
    ):
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if max_samples < 1:
            raise ConfigurationError("max_samples must be >= 1")
        self.window_seconds = float(window_seconds)
        self.max_samples = max_samples
        self.reservoir_seed = reservoir_seed
        self._counters: Dict[Tuple[str, Labels, int], int] = {}
        # Panel accumulator: value→count pool plus exact observed/min/max.
        self._panels: Dict[
            Tuple[str, Labels, int], Tuple[Dict[float, int], List]
        ] = {}

    def window_of(self, t: float) -> int:
        """The window index a virtual timestamp falls in."""
        if t < 0:
            raise ConfigurationError("virtual time must be >= 0")
        return int(t // self.window_seconds)

    def inc(self, metric: str, t: float, amount: int = 1, **labels) -> None:
        """Add ``amount`` events to a counter cell at virtual time ``t``."""
        if amount < 0:
            raise ConfigurationError("rollup counters only go up")
        key = (metric, canonical_labels(labels), self.window_of(t))
        self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, metric: str, t: float, value: float, **labels) -> None:
        """Record one value into a panel cell at virtual time ``t``."""
        value = float(value)
        key = (metric, canonical_labels(labels), self.window_of(t))
        entry = self._panels.get(key)
        if entry is None:
            # stats = [observed, minimum, maximum]
            entry = ({}, [0, value, value])
            self._panels[key] = entry
        pool, stats = entry
        pool[value] = pool.get(value, 0) + 1
        stats[0] += 1
        if value < stats[1]:
            stats[1] = value
        if value > stats[2]:
            stats[2] = value

    def snapshot(self) -> RollupSnapshot:
        """The canonical picklable state (sorted cells, truncated pools)."""
        counters = tuple(
            RollupCounter(metric=metric, labels=labels, window=window,
                          value=self._counters[(metric, labels, window)])
            for metric, labels, window in sorted(self._counters)
        )
        panels = []
        for metric, labels, window in sorted(self._panels):
            pool, stats = self._panels[(metric, labels, window)]
            samples, weights, total = _canonical_reservoir(
                dict(pool), self.max_samples, self.reservoir_seed
            )
            panels.append(
                RollupPanel(
                    metric=metric, labels=labels, window=window,
                    observed=stats[0], minimum=stats[1], maximum=stats[2],
                    samples=samples, weights=weights, total=total,
                )
            )
        return RollupSnapshot(
            window_seconds=self.window_seconds,
            max_samples=self.max_samples,
            reservoir_seed=self.reservoir_seed,
            counters=counters,
            panels=tuple(panels),
        )

    def merge(self, snapshot: RollupSnapshot) -> None:
        """Fold another store's snapshot in (worker → parent direction)."""
        if (
            snapshot.window_seconds != self.window_seconds
            or snapshot.max_samples != self.max_samples
            or snapshot.reservoir_seed != self.reservoir_seed
        ):
            raise TraceError(
                "cannot merge a rollup snapshot with mismatched "
                "window/reservoir configuration"
            )
        for cell in snapshot.counters:
            key = (cell.metric, cell.labels, cell.window)
            self._counters[key] = self._counters.get(key, 0) + cell.value
        for cell in snapshot.panels:
            key = (cell.metric, cell.labels, cell.window)
            entry = self._panels.get(key)
            if entry is None:
                entry = ({}, [0, cell.minimum, cell.maximum])
                self._panels[key] = entry
            pool, stats = entry
            for value, weight in zip(cell.samples, cell.weights):
                pool[value] = pool.get(value, 0) + weight
            stats[0] += cell.observed
            stats[1] = min(stats[1], cell.minimum)
            stats[2] = max(stats[2], cell.maximum)


# -- span-export projection ---------------------------------------------------------

#: Rollup metric names emitted by the projections below and by the cluster
#: emitters (replay driver / live fleet).
QUERIES_METRIC = "serve.queries"
ERRORS_METRIC = "serve.errors"
ARRIVALS_METRIC = "serve.arrivals"
REJECTED_METRIC = "serve.router.rejected"
ASSIGNMENTS_METRIC = "serve.router.assignments"
DEPTH_METRIC = "serve.router.queue_depth"
ROUTER_WAIT_METRIC = "serve.router.wait_seconds"
FANOUT_METRIC = "serve.shard.fanout"
SHARD_FAILURES_METRIC = "serve.shard.failures"
STAGE_VIRTUAL_METRIC = "serve.stage.virtual_seconds"
BREAKER_OPEN_METRIC = "serve.breaker.open"
E2E_METRIC = "serve.e2e.seconds"
WAIT_METRIC = "serve.wait.seconds"
SERVICE_METRIC = "serve.service.seconds"
TTFP_METRIC = "serve.ttfp.seconds"
REPLICAS_METRIC = "serve.autoscaler.replicas"
SCALE_ACTIONS_METRIC = "serve.autoscaler.actions"
ENERGY_METRIC = "serve.energy.microjoules"


def rollups_from_spans(
    spans: Iterable,
    window: float = 16.0,
    max_samples: int = DEFAULT_MAX_SAMPLES,
    reservoir_seed: int = 0,
) -> RollupSnapshot:
    """Project a span forest onto windowed rollups, deterministically.

    The virtual clock is the **stream ordinal** (window width ``window``
    is therefore "queries per window" here), and only seed-deterministic
    span fields are read — status, error codes, label attributes, and the
    executor's ``virtual_seconds`` cost model — never measured wall times.
    The same chaos run therefore projects to byte-identical rollups on
    the serial, thread, and process backends.

    Emitted series: ``serve.queries{status}``, ``serve.errors{code}``,
    ``serve.router.assignments{replica}`` / ``.queue_depth{replica}`` /
    ``.rejected``, ``serve.shard.fanout``, ``serve.breaker.open``, and
    ``serve.stage.virtual_seconds{stage}`` plus per-query
    ``serve.e2e.seconds`` from the root's virtual cost.
    """
    store = RollupStore(
        window_seconds=window, max_samples=max_samples,
        reservoir_seed=reservoir_seed,
    )
    for span in spans:
        t = float(span.ordinal)
        if span.kind == QUERY:
            if span.status == "error" or span.attributes.get("failed"):
                status = "failed"
            elif span.attributes.get("degraded"):
                status = "degraded"
            else:
                status = "ok"
            store.inc(QUERIES_METRIC, t, status=status)
            # The root's inclusive injected virtual cost; a fault-free
            # trace costs 0.0, keeping the panel dense over all queries.
            virtual = span.attributes.get("virtual_seconds", 0.0)
            store.observe(E2E_METRIC, t, float(virtual))
        elif span.kind == ROUTER:
            replica = span.attributes.get("replica")
            if replica is not None:
                store.inc(ASSIGNMENTS_METRIC, t, replica=replica)
                depth = span.attributes.get("queue_depth")
                if depth is not None:
                    store.observe(DEPTH_METRIC, t, float(depth), replica=replica)
            if span.status == "error":
                store.inc(REJECTED_METRIC, t)
        elif span.kind == SERVICE:
            virtual = span.attributes.get("virtual_seconds")
            if virtual is not None and span.service:
                store.observe(
                    STAGE_VIRTUAL_METRIC, t, float(virtual), stage=span.service
                )
        if span.status == "error" and span.error_code:
            store.inc(ERRORS_METRIC, t, code=span.error_code)
        if span.attributes.get("breaker") == "open":
            store.inc(BREAKER_OPEN_METRIC, t)
        width = span.attributes.get("shard.fanout")
        if width is not None:
            store.observe(FANOUT_METRIC, t, float(width))
        failures = span.attributes.get("shard.failed")
        if failures:
            store.inc(SHARD_FAILURES_METRIC, t, amount=int(failures))
    return store.snapshot()
