"""The fleet health report: rollups + SLOs + sampling in one dashboard.

``repro fleet-report`` is the operator console for the cluster layer —
the page an on-call would pull up, rendered deterministically from
deterministic inputs so it can also be golden-pinned byte-for-byte.  Two
sources feed it:

- **a virtual-time replay** (:func:`report_from_replay`): the cluster
  replay driver's per-tick rollups, the modeled TTFP series, the
  autoscaler's replica trajectory, and sampling verdicts over the virtual
  outcome stream;
- **a span export** (:func:`report_from_spans`): a timing-stripped JSONL
  forest from ``serve-bench --trace`` or a live cluster run, projected
  onto rollups on the ordinal clock and sampled trace-by-trace.

Sections: overview, per-replica panels, per-stage cost panels, the
autoscaler trajectory, the SLO budget table with firing burn-rate
alerts, and the trace-sampling bill (with its extrapolation to the
million-query hour).  ``--json`` emits the same content as canonical
JSON (sorted keys, 2-space indent, trailing newline) for golden files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.sampling import (
    SamplingStats,
    TraceSampler,
    summarize_forest,
    summarize_outcomes,
)
from repro.obs.slo import (
    BurnRateAlert,
    DEFAULT_ALERTS,
    SLODefinition,
    SLOStatus,
    evaluate_slos,
)
from repro.obs.timeseries import (
    ARRIVALS_METRIC,
    ASSIGNMENTS_METRIC,
    DEPTH_METRIC,
    E2E_METRIC,
    QUERIES_METRIC,
    REJECTED_METRIC,
    RollupSnapshot,
    SERVICE_METRIC,
    STAGE_VIRTUAL_METRIC,
    TTFP_METRIC,
    WAIT_METRIC,
    rollups_from_spans,
)

#: Report schema tag for the ``--json`` output.
SCHEMA = "repro.fleet-report/v1"


@dataclass(frozen=True)
class FleetReport:
    """Everything the dashboard renders, already evaluated."""

    source: str                         #: "replay" or "spans"
    rollups: RollupSnapshot
    slos: Tuple[SLOStatus, ...]
    sampling: SamplingStats
    extrapolated: Optional[SamplingStats]
    #: (tick, active replicas) — replay source only.
    replica_timeline: Tuple[Tuple[int, int], ...] = ()
    #: The cost ledger's panel (:func:`repro.obs.cost.fleet_cost_panel`):
    #: attributed joules/dollars plus, for replays, the priced autoscaler
    #: trajectory.  ``None`` only for reports built before the cost plane.
    cost: Optional[Dict] = None


def report_from_replay(
    result,
    head_rate: float = 0.1,
    top_k: int = 8,
    sample_seed: int = 0,
    trace_seed: int = 0,
    slos: Optional[Sequence[SLODefinition]] = None,
    alerts: Sequence[BurnRateAlert] = DEFAULT_ALERTS,
    target_queries: int = 1_000_000,
) -> FleetReport:
    """Evaluate a :class:`~repro.serving.cluster.replay.ReplayResult`."""
    if result.rollups is None:
        raise ConfigurationError("replay result carries no rollups")
    sampler = TraceSampler(head_rate=head_rate, seed=sample_seed, top_k=top_k)
    summaries = summarize_outcomes(result.outcomes, trace_seed=trace_seed)
    stats = sampler.stats(summaries)
    from repro.obs.cost import fleet_cost_panel, ledger_from_replay

    return FleetReport(
        source="replay",
        rollups=result.rollups,
        slos=evaluate_slos(result.rollups, slos, alerts=alerts),
        sampling=stats,
        extrapolated=stats.extrapolate(target_queries) if summaries else None,
        replica_timeline=tuple(result.replica_timeline),
        cost=fleet_cost_panel(
            ledger_from_replay(result),
            replica_timeline=tuple(result.replica_timeline),
            tick_seconds=result.rollups.window_seconds,
        ),
    )


def report_from_spans(
    spans: Sequence,
    window: float = 16.0,
    head_rate: float = 0.1,
    top_k: int = 8,
    sample_seed: int = 0,
    slos: Optional[Sequence[SLODefinition]] = None,
    alerts: Sequence[BurnRateAlert] = DEFAULT_ALERTS,
    target_queries: int = 1_000_000,
) -> FleetReport:
    """Evaluate a span forest (ordinal clock; deterministic fields only)."""
    rollups = rollups_from_spans(spans, window=window)
    sampler = TraceSampler(head_rate=head_rate, seed=sample_seed, top_k=top_k)
    summaries = summarize_forest(spans)
    stats = sampler.stats(summaries)
    from repro.obs.cost import fleet_cost_panel, ledger_from_spans

    return FleetReport(
        source="spans",
        rollups=rollups,
        slos=evaluate_slos(rollups, slos, alerts=alerts),
        sampling=stats,
        extrapolated=stats.extrapolate(target_queries) if summaries else None,
        cost=fleet_cost_panel(ledger_from_spans(spans)),
    )


# -- rendering ----------------------------------------------------------------------

def _overview_rows(report: FleetReport) -> List[List[str]]:
    rollups = report.rollups
    windows = rollups.windows()
    rows = [
        ["source", report.source],
        ["window width", f"{rollups.window_seconds:g}"],
        ["windows", str(len(windows))],
    ]
    arrivals = rollups.counter_total(ARRIVALS_METRIC)
    if arrivals:
        rows.append(["arrivals", str(arrivals)])
    for status in ("ok", "degraded", "failed"):
        count = rollups.counter_total(QUERIES_METRIC, status=status)
        rows.append([f"queries {status}", str(count)])
    rejected = rollups.counter_total(REJECTED_METRIC)
    rows.append(["rejected (admission)", str(rejected)])
    return rows


def _replica_labels(rollups: RollupSnapshot) -> List[str]:
    replicas = set()
    for cell in rollups.counter_cells(ASSIGNMENTS_METRIC):
        replicas.update(
            value for key, value in cell.labels if key == "replica"
        )
    return sorted(replicas, key=lambda r: (len(r), r))


def _replica_rows(report: FleetReport) -> List[List[str]]:
    rollups = report.rollups
    rows = []
    for replica in _replica_labels(rollups):
        assigned = rollups.counter_total(ASSIGNMENTS_METRIC, replica=replica)
        depth = rollups.merged_panel(DEPTH_METRIC, replica=replica)
        rows.append([
            replica,
            str(assigned),
            f"{depth.mean:.2f}" if depth else "-",
            f"{depth.maximum:g}" if depth else "-",
        ])
    return rows


def _stage_rows(report: FleetReport) -> List[List[str]]:
    rollups = report.rollups
    rows = []
    named = [
        ("e2e", E2E_METRIC), ("ttfp", TTFP_METRIC),
        ("router wait", WAIT_METRIC), ("service", SERVICE_METRIC),
    ]
    for label, metric in named:
        panel = rollups.merged_panel(metric)
        if panel is None:
            continue
        rows.append([
            label, str(panel.observed),
            f"{panel.percentile(50.0):.4f}",
            f"{panel.percentile(95.0):.4f}",
            f"{panel.percentile(99.0):.4f}",
        ])
    stages = set()
    for cell in rollups.panel_cells(STAGE_VIRTUAL_METRIC):
        stages.update(value for key, value in cell.labels if key == "stage")
    for stage in sorted(stages):
        panel = rollups.merged_panel(STAGE_VIRTUAL_METRIC, stage=stage)
        rows.append([
            f"stage {stage}", str(panel.observed),
            f"{panel.percentile(50.0):.4f}",
            f"{panel.percentile(95.0):.4f}",
            f"{panel.percentile(99.0):.4f}",
        ])
    return rows


def _timeline_text(timeline: Sequence[Tuple[int, int]]) -> str:
    """The replica trajectory, compressed to its change points."""
    if not timeline:
        return "(no autoscaler ticks)"
    parts = []
    previous = None
    for tick, count in timeline:
        if count != previous:
            parts.append(f"t{tick}:{count}")
            previous = count
    return " -> ".join(parts)


def _slo_rows(report: FleetReport) -> List[List[str]]:
    rows = []
    for status in report.slos:
        slo = status.slo
        target = (
            f"{slo.target:.3%}" if slo.kind == "availability"
            else f"{slo.target:.0%} <= {slo.threshold:g}s"
        )
        rows.append([
            slo.name,
            slo.kind,
            target,
            f"{status.compliance:.5f}",
            f"{status.budget_consumed:.2f}",
            "yes" if status.met else "NO",
            str(len(status.firings)),
        ])
    return rows


def _sampling_rows(report: FleetReport) -> List[List[str]]:
    stats = report.sampling
    reduction = (
        f"{stats.span_reduction:.1f}x"
        if stats.kept_spans else "all dropped"
    )
    rows = [
        ["head rate", f"{stats.head_rate:g}"],
        ["traces kept / total", f"{stats.kept_traces} / {stats.total_traces}"],
        ["spans kept / total", f"{stats.kept_spans} / {stats.total_spans}"],
        ["span reduction", reduction],
    ]
    for reason, count in stats.by_reason:
        rows.append([f"kept: {reason}", str(count)])
    if report.extrapolated is not None:
        extra = report.extrapolated
        rows.append([
            f"@ {extra.total_traces} queries",
            f"{extra.kept_spans} of {extra.total_spans} spans "
            f"({extra.span_reduction:.1f}x reduction)",
        ])
    return rows


def _cost_rows(report: FleetReport) -> List[List[str]]:
    from repro.obs.cost import format_energy

    panel = report.cost
    rows = [
        ["platform", str(panel["platform"])],
        ["attributed energy", format_energy(panel["microjoules"])],
        ["attributed dollars (TCO)", f"${panel['tco_dollars']:.8f}"],
        ["electricity only", f"${panel['electricity_dollars']:.8f}"],
        ["AI tax", format_energy(panel["tax_microjoules"])],
        ["AI tax share", f"{panel['tax_share']:.1%}"],
    ]
    if panel["provisioned_replica_seconds"] is not None:
        rows.append([
            "provisioned replica-seconds",
            f"{panel['provisioned_replica_seconds']:.1f}",
        ])
        rows.append([
            "provisioned energy",
            format_energy(panel["provisioned_microjoules"]),
        ])
        rows.append([
            "provisioned dollars (TCO)",
            f"${panel['provisioned_dollars']:.8f}",
        ])
    return rows


def render_fleet_report(report: FleetReport, max_firings: int = 8) -> str:
    """The deterministic text dashboard."""
    # Imported here, not at module top: repro.analysis pulls in profiling,
    # which imports repro.obs — a top-level import would be circular.
    from repro.analysis import format_table

    sections = [
        format_table("Fleet overview", ["Metric", "Value"],
                     _overview_rows(report))
    ]
    replica_rows = _replica_rows(report)
    if replica_rows:
        sections.append(format_table(
            "Per-replica", ["Replica", "Assigned", "Mean depth", "Max depth"],
            replica_rows,
        ))
    stage_rows = _stage_rows(report)
    if stage_rows:
        sections.append(format_table(
            "Latency panels (virtual seconds)",
            ["Series", "N", "p50", "p95", "p99"],
            stage_rows,
        ))
    if report.replica_timeline:
        sections.append(
            "Autoscaler trajectory (tick:replicas):\n  "
            + _timeline_text(report.replica_timeline)
        )
    if report.slos:
        sections.append(format_table(
            "SLO budgets",
            ["SLO", "Kind", "Target", "Compliance", "Budget burned", "Met",
             "Alerts"],
            _slo_rows(report),
        ))
        firing_lines = []
        for status in report.slos:
            for firing in status.firings[:max_firings]:
                firing_lines.append(
                    f"  [{firing.alert}] {status.slo.name} at window "
                    f"{firing.window}: long {firing.long_burn:.1f}x / "
                    f"short {firing.short_burn:.1f}x budget"
                )
            if len(status.firings) > max_firings:
                firing_lines.append(
                    f"  ... {len(status.firings) - max_firings} more "
                    f"{status.slo.name} firings"
                )
        if firing_lines:
            sections.append("Firing burn-rate alerts:\n" + "\n".join(firing_lines))
        else:
            sections.append("Firing burn-rate alerts: none")
    if report.cost is not None:
        sections.append(format_table(
            "Cost & energy (see repro cost-report)",
            ["Metric", "Value"], _cost_rows(report),
        ))
    sections.append(format_table(
        "Trace sampling", ["Metric", "Value"], _sampling_rows(report)
    ))
    return "\n\n".join(sections) + "\n"


# -- canonical JSON -----------------------------------------------------------------

def _panel_dict(panel) -> Dict:
    return {
        "labels": dict(panel.labels),
        "window": panel.window,
        "observed": panel.observed,
        "min": panel.minimum,
        "max": panel.maximum,
        "mean": panel.mean,
        "p50": panel.percentile(50.0),
        "p95": panel.percentile(95.0),
        "p99": panel.percentile(99.0),
    }


def _stats_dict(stats: SamplingStats) -> Dict:
    return {
        "head_rate": stats.head_rate,
        "seed": stats.seed,
        "top_k": stats.top_k,
        "total_traces": stats.total_traces,
        "kept_traces": stats.kept_traces,
        "total_spans": stats.total_spans,
        "kept_spans": stats.kept_spans,
        "span_reduction": (
            stats.span_reduction if stats.kept_spans else None
        ),
        "by_reason": {reason: count for reason, count in stats.by_reason},
    }


def report_to_dict(report: FleetReport) -> Dict:
    """The JSON-ready projection of a report (plain types only)."""
    rollups = report.rollups
    return {
        "schema": SCHEMA,
        "source": report.source,
        "window_seconds": rollups.window_seconds,
        "windows": list(rollups.windows()),
        "counters": [
            {
                "metric": cell.metric,
                "labels": dict(cell.labels),
                "window": cell.window,
                "value": cell.value,
            }
            for cell in rollups.counters
        ],
        "panels": {
            metric: [
                _panel_dict(cell) for cell in rollups.panel_cells(metric)
            ]
            for metric in rollups.metrics()
            if rollups.panel_cells(metric)
        },
        "replica_timeline": [list(pair) for pair in report.replica_timeline],
        "slos": [
            {
                "name": status.slo.name,
                "kind": status.slo.kind,
                "target": status.slo.target,
                "threshold": status.slo.threshold,
                "good": status.good,
                "bad": status.bad,
                "compliance": status.compliance,
                "budget_consumed": status.budget_consumed,
                "met": status.met,
                "firings": [
                    {
                        "alert": firing.alert,
                        "window": firing.window,
                        "long_burn": firing.long_burn,
                        "short_burn": firing.short_burn,
                    }
                    for firing in status.firings
                ],
            }
            for status in report.slos
        ],
        "sampling": _stats_dict(report.sampling),
        "extrapolated": (
            _stats_dict(report.extrapolated)
            if report.extrapolated is not None else None
        ),
        "cost": dict(report.cost) if report.cost is not None else None,
    }


def report_to_json(report: FleetReport) -> str:
    """Canonical JSON (sorted keys, 2-space indent, trailing newline)."""
    return json.dumps(report_to_dict(report), sort_keys=True, indent=2) + "\n"
