"""Observability: tracing, metrics, and exporters for the serving stack.

The paper's datacenter argument is built from measured latency
distributions — Figure 8's p95 query variability, Figure 9's component
breakdown, Figure 17's queueing model.  This package is the layer that
produces those measurements from a live run:

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` with
  deterministic seeded IDs (chaos replays export byte-identical span
  forests) propagated through the plan executor, every execution backend,
  the resilience wrappers, and down to profiler sections;
- :mod:`repro.obs.context` — the ambient (thread-local) tracer channel
  that lets layers without shared signatures report into one trace;
- :mod:`repro.obs.metrics` — counters and log-bucketed latency histograms
  with exact percentile extraction and an associative/commutative
  snapshot/merge protocol for process-backend aggregation;
- :mod:`repro.obs.export` — JSONL span export (optionally
  timing-stripped/deterministic) and Chrome trace-event export;
- :mod:`repro.obs.report` — the ``repro trace-report`` renderer:
  per-query waterfalls, per-service p50/p95/p99 summaries, and the
  measured-histogram vs M/M/1 comparison.

Wired into ``repro serve-bench --trace/--metrics`` and the
``repro trace-report`` subcommand; see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.context import annotate, current_tracer, use_tracer
from repro.obs.export import (
    read_jsonl,
    span_from_dict,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    E2E_HISTOGRAM,
    Counter,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    log_buckets,
    merge_histograms,
    merge_snapshots,
    percentile,
    record_response,
    record_responses,
    service_histogram_name,
    wait_histogram_name,
)
from repro.obs.report import (
    format_mm1_comparison,
    format_service_summary,
    format_waterfall,
    metrics_from_spans,
    render_report,
)
from repro.obs.trace import (
    ATTEMPT,
    QUERY,
    SECTION,
    SERVICE,
    Span,
    TraceContext,
    Tracer,
    collect_spans,
    span_id_for,
    trace_id_for,
)

__all__ = [
    "ATTEMPT",
    "Counter",
    "DEFAULT_BUCKETS",
    "E2E_HISTOGRAM",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "QUERY",
    "SECTION",
    "SERVICE",
    "Span",
    "TraceContext",
    "Tracer",
    "annotate",
    "collect_spans",
    "current_tracer",
    "format_mm1_comparison",
    "format_service_summary",
    "format_waterfall",
    "log_buckets",
    "merge_histograms",
    "merge_snapshots",
    "metrics_from_spans",
    "percentile",
    "read_jsonl",
    "record_response",
    "record_responses",
    "render_report",
    "service_histogram_name",
    "span_from_dict",
    "span_id_for",
    "span_to_dict",
    "to_chrome_trace",
    "to_jsonl",
    "trace_id_for",
    "use_tracer",
    "wait_histogram_name",
    "write_chrome_trace",
    "write_jsonl",
]
