"""Observability: tracing, metrics, and exporters for the serving stack.

The paper's datacenter argument is built from measured latency
distributions — Figure 8's p95 query variability, Figure 9's component
breakdown, Figure 17's queueing model.  This package is the layer that
produces those measurements from a live run:

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` with
  deterministic seeded IDs (chaos replays export byte-identical span
  forests) propagated through the plan executor, every execution backend,
  the resilience wrappers, and down to profiler sections; streaming runs
  add ``partial`` spans, from which time-to-first-partial
  (``serve.ttfp.seconds``) is derived next to end-to-end latency;
- :mod:`repro.obs.context` — the ambient (thread-local) tracer channel
  that lets layers without shared signatures report into one trace;
- :mod:`repro.obs.metrics` — counters and log-bucketed latency histograms
  with exact percentile extraction and an associative/commutative
  snapshot/merge protocol for process-backend aggregation;
- :mod:`repro.obs.export` — JSONL span export (optionally
  timing-stripped/deterministic) and Chrome trace-event export;
- :mod:`repro.obs.report` — the ``repro trace-report`` renderer:
  per-query waterfalls, per-service p50/p95/p99 summaries, the
  measured-histogram vs M/M/1 comparison, and the roofline placement of
  traced kernels;
- :mod:`repro.obs.counters` — deterministic work counters (flops, bytes,
  items, invocations) that hot paths attach to the innermost span;
- :mod:`repro.obs.critical_path` — longest-path extraction and exact
  self/wait/virtual time attribution over span forests
  (``repro trace-report --critical-path``);
- :mod:`repro.obs.bench` — the benchmark registry, ``BENCH_<tag>.json``
  reports, and the counter-based regression gate (``repro bench``);
- :mod:`repro.obs.timeseries` — windowed rollups over virtual time
  (counters + value panels keyed by metric × labels × window) with the
  same associative snapshot/merge algebra as the metrics registry;
- :mod:`repro.obs.sampling` — deterministic trace sampling: hash-based
  head decisions pure in ``(seed, trace_id)`` plus always-keep tail
  rules for errors/deadlines/breaker-opens/degradations and a
  slowest-k reservoir, with the span-reduction bill;
- :mod:`repro.obs.slo` — declarative SLOs, error budgets, and
  multi-window burn-rate alerts evaluated over rollup snapshots;
- :mod:`repro.obs.fleet_report` — the ``repro fleet-report`` dashboard
  and its canonical golden-pinnable JSON rendering;
- :mod:`repro.obs.pricing` — the single home for watt/dollar constants
  (Table 6 TDPs, server prices, electricity and TCO rates) derived from
  :mod:`repro.platforms.spec`; statcheck rule ``SC1002`` keeps magic
  pricing numbers from appearing anywhere else;
- :mod:`repro.obs.cost` — the ``repro cost-report`` ledger: per-query,
  per-stage energy (exact integer microjoules) and dollars folded from
  span forests or cluster replays, the compute-vs-AI-tax decomposition,
  platform what-if repricing against Figure 18's TCO ordering, and the
  million-query-day fleet extrapolation.

Wired into ``repro serve-bench --trace/--metrics``, ``repro trace-report``,
``repro fleet-report``, ``repro cost-report`` and ``repro bench``; see
``docs/OBSERVABILITY.md`` and ``docs/BENCHMARKING.md``.
"""

from repro.obs.context import annotate, current_tracer, use_tracer
from repro.obs.cost import (
    CostLedger,
    CostReport,
    FleetCost,
    WhatIfRow,
    cost_report_from_replay,
    cost_report_from_spans,
    fig18_reference_order,
    fleet_cost_panel,
    fleet_costs,
    format_energy,
    ledger_from_replay,
    ledger_from_spans,
    render_cost_report,
    reprice,
    stage_compute_dollars,
)
from repro.obs.counters import (
    WASTED,
    WorkCounters,
    aggregate_counters,
    counters_by_key,
    counters_of,
    format_count,
    kernel_counters,
    record_work,
    split_wasted_counters,
    wasted_span_ids,
)
from repro.obs.critical_path import (
    Attribution,
    TraceAnalysis,
    analyze_forest,
    format_critical_path_report,
    tail_attribution,
)
from repro.obs.export import (
    read_jsonl,
    span_from_dict,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    E2E_HISTOGRAM,
    QUEUE_DEPTH_HISTOGRAM,
    ROUTER_REJECTED_COUNTER,
    ROUTER_WAIT_HISTOGRAM,
    SHARD_FANOUT_HISTOGRAM,
    TTFP_HISTOGRAM,
    Counter,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    log_buckets,
    merge_histograms,
    bench_histogram_name,
    merge_snapshots,
    percentile,
    record_response,
    record_responses,
    replica_counter_name,
    service_histogram_name,
    wait_histogram_name,
)
from repro.obs.fleet_report import (
    FleetReport,
    render_fleet_report,
    report_from_replay,
    report_from_spans,
    report_to_json,
)
from repro.obs.pricing import (
    ACCELERATOR_TDP_WATTS,
    PLATFORM_WATTS,
    SERVER_PRICES,
    dollars_per_server_second,
    electricity_dollars,
    energy_microjoules,
    monthly_server_tco,
    server_tco_breakdown,
    watt_ratio,
)
from repro.obs.report import (
    format_mm1_comparison,
    format_roofline,
    format_service_summary,
    format_wasted_work,
    format_waterfall,
    metrics_from_spans,
    render_report,
)
from repro.obs.sampling import (
    SamplingStats,
    TraceSampler,
    TraceSummary,
    head_decision,
    head_score,
    summarize_forest,
    summarize_outcomes,
)
from repro.obs.slo import (
    BurnRateAlert,
    SLODefinition,
    SLOStatus,
    default_slos,
    evaluate_slo,
    evaluate_slos,
)
from repro.obs.timeseries import (
    ENERGY_METRIC,
    RollupSnapshot,
    RollupStore,
    canonical_labels,
    merge_rollup_snapshots,
    rollups_from_spans,
)
from repro.obs.trace import (
    ATTEMPT,
    KERNEL,
    PARTIAL,
    QUERY,
    ROUTER,
    SECTION,
    SERVICE,
    Span,
    TraceContext,
    Tracer,
    collect_spans,
    span_id_for,
    trace_id_for,
)

__all__ = [
    "ACCELERATOR_TDP_WATTS",
    "ATTEMPT",
    "Attribution",
    "BurnRateAlert",
    "CostLedger",
    "CostReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "E2E_HISTOGRAM",
    "ENERGY_METRIC",
    "FleetCost",
    "FleetReport",
    "Histogram",
    "HistogramSnapshot",
    "KERNEL",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PARTIAL",
    "PLATFORM_WATTS",
    "QUERY",
    "QUEUE_DEPTH_HISTOGRAM",
    "ROUTER",
    "ROUTER_REJECTED_COUNTER",
    "ROUTER_WAIT_HISTOGRAM",
    "RollupSnapshot",
    "RollupStore",
    "SECTION",
    "SERVER_PRICES",
    "SERVICE",
    "SHARD_FANOUT_HISTOGRAM",
    "SLODefinition",
    "SLOStatus",
    "SamplingStats",
    "Span",
    "TTFP_HISTOGRAM",
    "TraceAnalysis",
    "TraceContext",
    "TraceSampler",
    "TraceSummary",
    "Tracer",
    "WASTED",
    "WhatIfRow",
    "WorkCounters",
    "aggregate_counters",
    "analyze_forest",
    "annotate",
    "bench_histogram_name",
    "canonical_labels",
    "collect_spans",
    "cost_report_from_replay",
    "cost_report_from_spans",
    "counters_by_key",
    "counters_of",
    "current_tracer",
    "default_slos",
    "dollars_per_server_second",
    "electricity_dollars",
    "energy_microjoules",
    "evaluate_slo",
    "evaluate_slos",
    "fig18_reference_order",
    "fleet_cost_panel",
    "fleet_costs",
    "format_count",
    "format_critical_path_report",
    "format_energy",
    "format_mm1_comparison",
    "format_roofline",
    "format_service_summary",
    "format_wasted_work",
    "format_waterfall",
    "head_decision",
    "head_score",
    "kernel_counters",
    "ledger_from_replay",
    "ledger_from_spans",
    "log_buckets",
    "merge_histograms",
    "merge_rollup_snapshots",
    "merge_snapshots",
    "metrics_from_spans",
    "monthly_server_tco",
    "percentile",
    "read_jsonl",
    "record_work",
    "record_response",
    "record_responses",
    "render_cost_report",
    "render_fleet_report",
    "render_report",
    "replica_counter_name",
    "report_from_replay",
    "report_from_spans",
    "report_to_json",
    "reprice",
    "rollups_from_spans",
    "server_tco_breakdown",
    "service_histogram_name",
    "span_from_dict",
    "span_id_for",
    "span_to_dict",
    "split_wasted_counters",
    "stage_compute_dollars",
    "summarize_forest",
    "summarize_outcomes",
    "tail_attribution",
    "to_chrome_trace",
    "to_jsonl",
    "trace_id_for",
    "use_tracer",
    "wait_histogram_name",
    "wasted_span_ids",
    "watt_ratio",
    "write_chrome_trace",
    "write_jsonl",
]
