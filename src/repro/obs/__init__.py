"""Observability: tracing, metrics, and exporters for the serving stack.

The paper's datacenter argument is built from measured latency
distributions — Figure 8's p95 query variability, Figure 9's component
breakdown, Figure 17's queueing model.  This package is the layer that
produces those measurements from a live run:

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Tracer` with
  deterministic seeded IDs (chaos replays export byte-identical span
  forests) propagated through the plan executor, every execution backend,
  the resilience wrappers, and down to profiler sections; streaming runs
  add ``partial`` spans, from which time-to-first-partial
  (``serve.ttfp.seconds``) is derived next to end-to-end latency;
- :mod:`repro.obs.context` — the ambient (thread-local) tracer channel
  that lets layers without shared signatures report into one trace;
- :mod:`repro.obs.metrics` — counters and log-bucketed latency histograms
  with exact percentile extraction and an associative/commutative
  snapshot/merge protocol for process-backend aggregation;
- :mod:`repro.obs.export` — JSONL span export (optionally
  timing-stripped/deterministic) and Chrome trace-event export;
- :mod:`repro.obs.report` — the ``repro trace-report`` renderer:
  per-query waterfalls, per-service p50/p95/p99 summaries, the
  measured-histogram vs M/M/1 comparison, and the roofline placement of
  traced kernels;
- :mod:`repro.obs.counters` — deterministic work counters (flops, bytes,
  items, invocations) that hot paths attach to the innermost span;
- :mod:`repro.obs.critical_path` — longest-path extraction and exact
  self/wait/virtual time attribution over span forests
  (``repro trace-report --critical-path``);
- :mod:`repro.obs.bench` — the benchmark registry, ``BENCH_<tag>.json``
  reports, and the counter-based regression gate (``repro bench``).

Wired into ``repro serve-bench --trace/--metrics``, ``repro trace-report``
and ``repro bench``; see ``docs/OBSERVABILITY.md`` and
``docs/BENCHMARKING.md``.
"""

from repro.obs.context import annotate, current_tracer, use_tracer
from repro.obs.counters import (
    WorkCounters,
    aggregate_counters,
    counters_by_key,
    counters_of,
    format_count,
    kernel_counters,
    record_work,
)
from repro.obs.critical_path import (
    Attribution,
    TraceAnalysis,
    analyze_forest,
    format_critical_path_report,
    tail_attribution,
)
from repro.obs.export import (
    read_jsonl,
    span_from_dict,
    span_to_dict,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    E2E_HISTOGRAM,
    QUEUE_DEPTH_HISTOGRAM,
    ROUTER_REJECTED_COUNTER,
    ROUTER_WAIT_HISTOGRAM,
    SHARD_FANOUT_HISTOGRAM,
    TTFP_HISTOGRAM,
    Counter,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    log_buckets,
    merge_histograms,
    merge_snapshots,
    percentile,
    record_response,
    record_responses,
    service_histogram_name,
    wait_histogram_name,
)
from repro.obs.report import (
    format_mm1_comparison,
    format_roofline,
    format_service_summary,
    format_waterfall,
    metrics_from_spans,
    render_report,
)
from repro.obs.trace import (
    ATTEMPT,
    KERNEL,
    PARTIAL,
    QUERY,
    ROUTER,
    SECTION,
    SERVICE,
    Span,
    TraceContext,
    Tracer,
    collect_spans,
    span_id_for,
    trace_id_for,
)

__all__ = [
    "ATTEMPT",
    "Attribution",
    "Counter",
    "DEFAULT_BUCKETS",
    "E2E_HISTOGRAM",
    "Histogram",
    "HistogramSnapshot",
    "KERNEL",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PARTIAL",
    "QUERY",
    "QUEUE_DEPTH_HISTOGRAM",
    "ROUTER",
    "ROUTER_REJECTED_COUNTER",
    "ROUTER_WAIT_HISTOGRAM",
    "SECTION",
    "SERVICE",
    "SHARD_FANOUT_HISTOGRAM",
    "Span",
    "TTFP_HISTOGRAM",
    "TraceAnalysis",
    "TraceContext",
    "Tracer",
    "WorkCounters",
    "aggregate_counters",
    "analyze_forest",
    "annotate",
    "collect_spans",
    "counters_by_key",
    "counters_of",
    "current_tracer",
    "format_count",
    "format_critical_path_report",
    "format_mm1_comparison",
    "format_roofline",
    "format_service_summary",
    "format_waterfall",
    "kernel_counters",
    "log_buckets",
    "merge_histograms",
    "merge_snapshots",
    "metrics_from_spans",
    "percentile",
    "read_jsonl",
    "record_work",
    "record_response",
    "record_responses",
    "render_report",
    "service_histogram_name",
    "span_from_dict",
    "span_id_for",
    "span_to_dict",
    "tail_attribution",
    "to_chrome_trace",
    "to_jsonl",
    "trace_id_for",
    "use_tracer",
    "wait_histogram_name",
    "write_chrome_trace",
    "write_jsonl",
]
