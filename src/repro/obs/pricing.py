"""Power and price helpers for the cost ledger — one source of truth.

Every watt, joule, and dollar figure the observability layer (and the
figure benches) prints derives from exactly two places: the Table 6/7
constants in :mod:`repro.platforms.spec` and the Table 7 TCO arithmetic
in :mod:`repro.datacenter.tco`.  This module is the thin derivation layer
between them and the per-query ledger (:mod:`repro.obs.cost`):

- **watts**: full-server draw per platform (baseline server + accelerator
  TDP adders), plus accelerator-only TDP and the Figure 15 watt ratios;
- **dollars per server-second**: the monthly TCO (DC capex/opex, server
  capex/opex, energy) amortized to one second of provisioned server time
  — the rate that prices both per-query attributions and fleet
  trajectories;
- **dollars per joule**: the electricity-only rate (PUE-burdened), for
  the energy line item on its own;
- **integer microjoules**: the ledger's exact energy unit.  Seconds are
  virtual (seed-deterministic), watts are constants, and the product is
  rounded once to an integer — so per-stage energies *sum exactly* to
  per-query and per-trace totals, byte-identically across backends.

The statcheck rule ``SC1002`` enforces the discipline: inline
watt/joule/dollar numeric literals are flagged everywhere outside
``platforms/spec.py`` and this module.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.datacenter.tco import (
    HOURS_PER_MONTH,
    TCOBreakdown,
    TCOModel,
    TCOParameters,
)
from repro.platforms.spec import (
    ACCELERATORS,
    CMP,
    PLATFORMS,
    server_price,
    server_watts,
    spec,
)

#: Unit conversions (exact, dimensionless scale factors).
MICROJOULES_PER_JOULE = 1_000_000
JOULES_PER_KWH = 3_600_000.0
SECONDS_PER_HOUR = 3600.0

#: Full-server power draw per platform (Table 6 adders over the baseline).
PLATFORM_WATTS: Dict[str, float] = {p: server_watts(p) for p in PLATFORMS}

#: Accelerator-card TDP alone (the Figure 15 denominator deltas).
ACCELERATOR_TDP_WATTS: Dict[str, float] = {
    p: spec(p).tdp_watts for p in PLATFORMS
}

#: Purchase price of a server equipped with each platform.
SERVER_PRICES: Dict[str, float] = {p: server_price(p) for p in PLATFORMS}


def watt_ratio(platform: str) -> float:
    """Platform TDP over the CMP TDP — Figure 15's power normalizer."""
    return spec(platform).tdp_watts / spec(CMP).tdp_watts


def server_tco_breakdown(
    platform: str, parameters: Optional[TCOParameters] = None
) -> TCOBreakdown:
    """Monthly itemized TCO of one ``platform``-equipped server."""
    model = TCOModel(parameters) if parameters is not None else TCOModel()
    return model.platform_breakdown(platform)


def monthly_server_tco(
    platform: str, parameters: Optional[TCOParameters] = None
) -> float:
    """Monthly all-in dollars for one ``platform``-equipped server."""
    return server_tco_breakdown(platform, parameters).total


def dollars_per_server_second(
    platform: str, parameters: Optional[TCOParameters] = None
) -> float:
    """The TCO-amortized rate one provisioned server-second costs."""
    return monthly_server_tco(platform, parameters) / (
        HOURS_PER_MONTH * SECONDS_PER_HOUR
    )


def electricity_dollars_per_joule(
    parameters: Optional[TCOParameters] = None,
) -> float:
    """Electricity-only rate per *served* joule, PUE-burdened."""
    p = parameters if parameters is not None else TCOParameters()
    return p.electricity_cost_per_kwh * p.pue / JOULES_PER_KWH


def energy_microjoules(platform: str, seconds: float) -> int:
    """Exact integer microjoules for ``seconds`` of full-server draw.

    The single rounding point of the energy pipeline: every ledger entry
    is produced here, and totals are integer sums of these values — which
    is what makes per-stage attributions sum *exactly* to trace totals.
    """
    if seconds < 0:
        raise ValueError("cannot price negative seconds")
    return int(round(seconds * PLATFORM_WATTS[platform] * MICROJOULES_PER_JOULE))


def electricity_dollars(
    microjoules: int, parameters: Optional[TCOParameters] = None
) -> float:
    """Electricity-only dollars for an integer-microjoule energy total."""
    return (
        microjoules / MICROJOULES_PER_JOULE
    ) * electricity_dollars_per_joule(parameters)


__all__ = [
    "ACCELERATORS",
    "ACCELERATOR_TDP_WATTS",
    "JOULES_PER_KWH",
    "MICROJOULES_PER_JOULE",
    "PLATFORM_WATTS",
    "SECONDS_PER_HOUR",
    "SERVER_PRICES",
    "dollars_per_server_second",
    "electricity_dollars",
    "electricity_dollars_per_joule",
    "energy_microjoules",
    "monthly_server_tco",
    "server_tco_breakdown",
    "watt_ratio",
]
