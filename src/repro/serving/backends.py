"""Execution backends: one registry for every pool in the repository.

The serving executor (:mod:`repro.serving.executor`) and the Sirius Suite
pthread-analog ports (:mod:`repro.suite.parallel`) both need "apply this
callable to these items, possibly concurrently".  Before this module each
grew its own pool code; now both dispatch through a single registry of
named :class:`ExecutionBackend` strategies:

``serial``
    In the calling thread, one item at a time.  The reference backend —
    everything else must produce identical results.
``thread``
    A ``ThreadPoolExecutor``.  Wins when the work releases the GIL (numpy
    kernels) or blocks on I/O; pure-Python work serializes on the GIL.
``process``
    A forked ``multiprocessing`` pool (Linux ``fork`` start method).  The
    callable is *inherited* by the children through fork rather than
    pickled per task, so closures and heavyweight bound state (a trained
    decoder, an indexed QA engine) cost nothing to ship; only items and
    results cross the pipe and must be picklable.

Backends are looked up by name via :func:`get_backend`; custom strategies
(e.g. a remote RPC pool) register with :func:`register_backend`.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


def default_workers() -> int:
    """Worker count used when a caller does not pin one."""
    return max(os.cpu_count() or 1, 1)


class ExecutionBackend(abc.ABC):
    """One strategy for mapping a callable over items, order-preserving."""

    #: Registry key, e.g. ``"thread"``.
    name: str = ""

    @abc.abstractmethod
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        workers: Optional[int] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item; results in input order."""

    def resolve_workers(self, n_items: int, workers: Optional[int]) -> int:
        requested = workers if workers is not None else default_workers()
        if requested < 1:
            raise ConfigurationError("workers must be >= 1")
        return min(requested, max(n_items, 1))

    def __repr__(self) -> str:
        return f"<ExecutionBackend {self.name}>"


class SerialBackend(ExecutionBackend):
    """The in-line reference backend (no concurrency, no pools)."""

    name = "serial"

    def map(self, fn, items, workers=None):
        self.resolve_workers(len(items), workers)  # validate even when unused
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """GIL-sharing thread pool; best for numpy-heavy or blocking work."""

    name = "thread"

    def map(self, fn, items, workers=None):
        items = list(items)
        n_workers = self.resolve_workers(len(items), workers)
        if len(items) <= 1 or n_workers == 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]


#: Callable inherited by forked workers; set only for the duration of one
#: :meth:`ProcessBackend.map` call (the parent forks *after* assignment, so
#: children see it without any pickling).
_FORK_FN: Optional[Callable[[Any], Any]] = None


def _call_fork_fn(item):
    """Module-level trampoline run inside forked workers (picklable)."""
    return _FORK_FN(item)


class ProcessBackend(ExecutionBackend):
    """Forked process pool — true multicore, no GIL.

    Uses the ``fork`` start method so the callable and everything it closes
    over (trained models, indexes) are shared copy-on-write with the
    children instead of being re-pickled per task.  Items and results still
    cross process boundaries and must be picklable.
    """

    name = "process"

    def map(self, fn, items, workers=None):
        global _FORK_FN
        items = list(items)
        n_workers = self.resolve_workers(len(items), workers)
        if len(items) <= 1 or n_workers == 1:
            return [fn(item) for item in items]
        context = multiprocessing.get_context("fork")
        previous = _FORK_FN
        _FORK_FN = fn
        try:
            with context.Pool(processes=n_workers) as pool:
                return pool.map(_call_fork_fn, items)
        finally:
            _FORK_FN = previous


_REGISTRY: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add (or replace) a backend under ``backend.name``."""
    if not backend.name:
        raise ConfigurationError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    """Registry lookup; raises :class:`ConfigurationError` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


register_backend(SerialBackend())
register_backend(ThreadBackend())
register_backend(ProcessBackend())
