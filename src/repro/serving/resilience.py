"""Resilience policies: deadlines, retries, and circuit breakers per service.

The paper's provisioning math (Figs 17-19, Tables 8/9) assumes every
ASR/QA/IMM call completes; production serving must instead meet latency
targets while individual services stall, error, or return garbage — the
"AI tax" of stragglers and partial failure.  This module adds that armour
at the one choke point the serving refactor created: any
:class:`~repro.serving.service.Service` can be wrapped by
:class:`ResilientService` without touching algorithmic code.

Three mechanisms compose, all deterministic under a seed:

- **deadline** — a total per-call budget covering every attempt, backoff
  sleep, and injected virtual latency; overruns raise
  :class:`~repro.errors.DeadlineExceededError` and are never retried
  (elapsed time only grows);
- **bounded retries** — up to ``max_attempts`` tries with exponential
  backoff and seeded jitter (the jitter stream is keyed by
  ``(seed, service, ordinal)``, so replays sleep identically);
- **circuit breaker** — per wrapped service: ``failure_threshold``
  consecutive failures open the circuit, subsequent calls fail fast with
  :class:`~repro.errors.CircuitOpenError` for a cooldown (counted in
  *calls* by default, so chaos runs replay exactly; optionally in wall
  seconds), then a half-open probe decides between recovery and re-opening.

What failures *mean* is decided one layer up: the plan executor degrades a
failed IMM branch (VIQ → VQ) or a failed QA stage (low-confidence fallback
answer) and only lets ASR/classify failures kill the query.  See
``docs/RESILIENCE.md`` for the degradation matrix.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ServiceError,
    SiriusError,
)
from repro.obs.context import current_tracer
from repro.obs.trace import ATTEMPT
from repro.profiling import Profiler
from repro.serving.faults import (
    FaultPlan,
    FaultInjector,
    VirtualLatencyAware,
    charge_virtual_seconds,
    drain_virtual_seconds,
)
from repro.serving.service import Service, ServiceRequest

#: Circuit-breaker states (:attr:`CircuitBreaker.state`).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    The *raw* schedule is ``min(backoff_base * backoff_factor**i,
    backoff_max)`` for retry ``i`` (0-based) — non-decreasing because
    ``backoff_factor >= 1``.  Jitter scales each delay by a seeded factor in
    ``[1 - jitter, 1 + jitter]``, so delays stay within a provable envelope
    (the property suite locks down exactly these invariants).
    """

    max_attempts: int = 3        #: total tries, including the first (>= 1)
    backoff_base: float = 0.0    #: first retry delay in seconds (0 = no sleeping)
    backoff_factor: float = 2.0  #: growth per retry (>= 1 keeps the schedule monotone)
    backoff_max: float = 1.0     #: per-delay cap in seconds
    jitter: float = 0.0          #: relative jitter amplitude in [0, 1]

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def raw_delay(self, retry_index: int) -> float:
        """Unjittered delay before retry ``retry_index`` (0-based)."""
        return min(self.backoff_base * self.backoff_factor ** retry_index,
                   self.backoff_max)

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Jittered delay; always within ``raw * [1 - jitter, 1 + jitter]``."""
        raw = self.raw_delay(retry_index)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def schedule(self, seed: int = 0, service: str = "", ordinal: int = 0) -> Tuple[float, ...]:
        """The full jittered backoff schedule one call would sleep through."""
        rng = backoff_rng(seed, service, ordinal)
        return tuple(self.delay(i, rng) for i in range(self.max_attempts - 1))


def backoff_rng(seed: int, service: str, ordinal: int) -> random.Random:
    """The seeded jitter stream for one call (string seeds hash via sha512,
    so replays agree across processes and ``PYTHONHASHSEED``)."""
    return random.Random(f"{seed}:{service}:{ordinal}:backoff")


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration for one service's circuit breaker."""

    failure_threshold: int = 5       #: consecutive failures that open the circuit
    cooldown_calls: int = 8          #: rejected calls before a half-open probe
    cooldown_seconds: Optional[float] = None  #: wall-clock cooldown instead, if set
    recovery_successes: int = 1      #: half-open successes that close the circuit

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.cooldown_calls < 1:
            raise ConfigurationError("cooldown_calls must be >= 1")
        if self.cooldown_seconds is not None and self.cooldown_seconds <= 0:
            raise ConfigurationError("cooldown_seconds must be > 0 when set")
        if self.recovery_successes < 1:
            raise ConfigurationError("recovery_successes must be >= 1")


class CircuitBreaker:
    """Closed → open → half-open breaker keyed to one service.

    Thread-safe; state transitions happen under one lock.  The default
    cooldown is counted in *rejected calls* rather than wall seconds so a
    seeded chaos run transitions at exactly the same points every replay;
    pass ``cooldown_seconds`` (with an injectable ``clock``) for the
    conventional time-based behaviour.
    """

    def __init__(self, policy: BreakerPolicy,
                 clock: Callable[[], float] = time.monotonic):
        self.policy = policy
        self.clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._rejected_in_cooldown = 0
        self._half_open_successes = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the next call may proceed (may transition open → half-open)."""
        with self._lock:
            if self._state != OPEN:
                return True
            if self.policy.cooldown_seconds is not None:
                cooled = (self.clock() - self._opened_at
                          >= self.policy.cooldown_seconds)
            else:
                cooled = self._rejected_in_cooldown >= self.policy.cooldown_calls
            if cooled:
                self._state = HALF_OPEN
                self._half_open_successes = 0
                return True
            self._rejected_in_cooldown += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._half_open_successes += 1
                if self._half_open_successes >= self.policy.recovery_successes:
                    self._state = CLOSED
            elif self._state == OPEN:
                # A call admitted just before the circuit opened finished
                # fine; leave the open circuit to its cooldown.
                pass

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._trip()
            elif (self._state == CLOSED
                  and self._consecutive_failures >= self.policy.failure_threshold):
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._rejected_in_cooldown = 0
        self._half_open_successes = 0
        self._opened_at = self.clock()

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state}>"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything :class:`ResilientService` applies around one service."""

    deadline_seconds: Optional[float] = None  #: total per-call budget (None = none)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: Optional[BreakerPolicy] = None   #: None disables the breaker
    seed: int = 0                             #: jitter stream seed
    detect_corruption: bool = True            #: treat marked payloads as failures

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be > 0 when set")


@dataclass(frozen=True)
class CallRecord:
    """One resilient call's outcome, appended to :attr:`ResilientService.call_log`."""

    service: str
    ordinal: int
    attempts: int      #: attempts actually executed (0 = rejected by open circuit)
    seconds: float     #: elapsed incl. backoff and virtual latency
    ok: bool
    code: str = ""     #: stable error code when ``ok`` is False


class ResilientService(VirtualLatencyAware):
    """Deadline + retry + breaker armour around any :class:`Service`.

    Purely a wrapper: ``name``/``label``/``warmup`` delegate to the inner
    service, and a successful first attempt adds two clock reads and a log
    append.  Every terminal failure re-raises as (a subclass of)
    :class:`~repro.errors.ServiceError` carrying a stable ``code``, which is
    what the executor's degradation rules key on.
    """

    def __init__(self, inner: Service, policy: ResiliencePolicy,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.policy = policy
        self.name = inner.name
        self.label = inner.label
        self._sleep = sleep
        self._breaker = (CircuitBreaker(policy.breaker)
                         if policy.breaker is not None else None)
        self._log_lock = threading.Lock()
        self.call_log: List[CallRecord] = []

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._breaker

    def warmup(self) -> None:
        self.inner.warmup()

    def reset_log(self) -> None:
        with self._log_lock:
            self.call_log.clear()

    # -- the attempt loop ---------------------------------------------------------

    def invoke(self, request: ServiceRequest, profiler: Profiler):
        policy = self.policy
        rng = backoff_rng(policy.seed, self.name, request.ordinal)
        tracer = current_tracer()
        if tracer is not None and tracer.current_span() is None:
            tracer = None  # invoked outside any trace; nothing to nest under
        start = time.perf_counter()
        total_virtual = 0.0
        attempt = 0
        try:
            while True:
                if self._breaker is not None and not self._breaker.allow():
                    rejection = CircuitOpenError(
                        f"service {self.name!r} circuit is open "
                        f"(ordinal={request.ordinal})",
                        service=self.name,
                    )
                    if tracer is not None:
                        # A zero-width attempt span records the fast-fail.
                        span = tracer.begin_span(
                            "attempt", kind=ATTEMPT,
                            attributes={"attempt": attempt, "breaker": OPEN,
                                        "rejected": True, "wasted": True},
                        )
                        tracer.end_span(
                            span, status="error",
                            error_code=getattr(rejection, "code", "SIRIUS"),
                        )
                    raise rejection
                breaker_state = (self._breaker.state
                                 if self._breaker is not None else "")
                drain_virtual_seconds()
                span = None
                if tracer is not None:
                    attributes = {"attempt": attempt}
                    if breaker_state:
                        attributes["breaker"] = breaker_state
                    span = tracer.begin_span(
                        "attempt", kind=ATTEMPT, attributes=attributes
                    )
                failure: Optional[SiriusError] = None
                payload = None
                try:
                    payload = self.inner.invoke(
                        replace(request, attempt=attempt), profiler
                    )
                except SiriusError as exc:
                    failure = exc
                finally:
                    total_virtual += drain_virtual_seconds()
                attempt += 1
                elapsed = time.perf_counter() - start + total_virtual
                if failure is None and self._corrupted(payload):
                    failure = ServiceError(
                        f"service {self.name!r} returned a corrupted payload "
                        f"(ordinal={request.ordinal})",
                        service=self.name,
                    )
                if failure is None and (policy.deadline_seconds is not None
                                        and elapsed > policy.deadline_seconds):
                    # The answer arrived after the caller's budget: useless.
                    failure = DeadlineExceededError(
                        f"service {self.name!r} exceeded its "
                        f"{policy.deadline_seconds:.3f}s deadline "
                        f"({elapsed:.3f}s elapsed)",
                        service=self.name,
                    )
                if span is not None:
                    if failure is None:
                        tracer.end_span(span)
                    else:
                        # The attempt's work was thrown away (it will be
                        # retried or the service will fail/degrade); tag it
                        # so the cost ledger can bill wasted joules apart
                        # from served work.
                        span.attributes["wasted"] = True
                        tracer.end_span(
                            span, status="error",
                            error_code=getattr(failure, "code", "SIRIUS"),
                        )
                if failure is None:
                    if self._breaker is not None:
                        self._breaker.record_success()
                    self._record(request.ordinal, attempt, elapsed, ok=True)
                    charge_virtual_seconds(total_virtual)
                    if tracer is not None:
                        tracer.annotate("attempts", attempt)
                    return payload
                if self._breaker is not None:
                    self._breaker.record_failure()
                if isinstance(failure, DeadlineExceededError):
                    raise failure  # elapsed only grows; retrying cannot help
                if attempt >= policy.retry.max_attempts:
                    raise failure
                delay = policy.retry.delay(attempt - 1, rng)
                if (policy.deadline_seconds is not None
                        and elapsed + delay >= policy.deadline_seconds):
                    raise DeadlineExceededError(
                        f"service {self.name!r} retry budget exhausted after "
                        f"{attempt} attempt(s) ({elapsed:.3f}s + {delay:.3f}s "
                        f"backoff >= {policy.deadline_seconds:.3f}s deadline)",
                        service=self.name,
                    )
                if delay > 0:
                    self._sleep(delay)
        except SiriusError as exc:
            elapsed = time.perf_counter() - start + total_virtual
            code = getattr(exc, "code", "SIRIUS")
            self._record(request.ordinal, attempt, elapsed, ok=False, code=code)
            # Hand the accumulated virtual latency to the layer above
            # (``__call__``'s stats or the executor's accounting); the
            # success path does the same before returning.
            charge_virtual_seconds(total_virtual)
            if tracer is not None:
                tracer.annotate("attempts", attempt)
            raise

    def _corrupted(self, payload) -> bool:
        if not self.policy.detect_corruption:
            return False
        return payload is None or getattr(payload, "__sirius_corrupt__", False)

    def _record(self, ordinal: int, attempts: int, seconds: float,
                ok: bool, code: str = "") -> None:
        record = CallRecord(service=self.name, ordinal=ordinal,
                            attempts=attempts, seconds=seconds, ok=ok, code=code)
        with self._log_lock:
            self.call_log.append(record)

    def __repr__(self) -> str:
        return f"<ResilientService {self.name}>"


# -- wiring helpers ---------------------------------------------------------------

PolicySpec = Union[ResiliencePolicy, Mapping[str, ResiliencePolicy]]


def default_policies(seed: int = 0) -> Dict[str, ResiliencePolicy]:
    """Per-service defaults used by the chaos bench and CLI.

    QA and IMM — the degradable branches — get tight deadlines, real retry
    budgets, and breakers; ASR (fatal, so failures are expensive) gets a
    generous deadline and retries but no breaker (one bad utterance must
    not blacklist the recognizer); classification is glue and gets a bare
    retry.
    """
    return {
        "asr": ResiliencePolicy(
            deadline_seconds=30.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.001, jitter=0.5),
            seed=seed,
        ),
        "classify": ResiliencePolicy(
            retry=RetryPolicy(max_attempts=2), seed=seed,
        ),
        "qa": ResiliencePolicy(
            deadline_seconds=2.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.001, jitter=0.5),
            breaker=BreakerPolicy(failure_threshold=4, cooldown_calls=6),
            seed=seed,
        ),
        "imm": ResiliencePolicy(
            deadline_seconds=2.0,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.001, jitter=0.5),
            breaker=BreakerPolicy(failure_threshold=3, cooldown_calls=5),
            seed=seed,
        ),
    }


def wrap_services(
    services: Mapping[str, Service],
    policies: Optional[PolicySpec] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Dict[str, Service]:
    """Wrap a service registry: ``ResilientService(FaultInjector(service))``.

    ``policies`` may be one policy for every service or a per-name mapping
    (missing names fall back to :func:`default_policies`); ``fault_plan``
    (when given) slips a deterministic :class:`FaultInjector` under each
    wrapper.  Inner services are shared, not copied — wrapping is cheap and
    repeatable, and a fresh wrap starts with fresh breakers and logs.
    """
    defaults = default_policies()
    wrapped: Dict[str, Service] = {}
    for name, service in services.items():
        inner = service
        if fault_plan is not None:
            inner = FaultInjector(inner, fault_plan)
        if isinstance(policies, ResiliencePolicy):
            policy = policies
        elif policies is not None and name in policies:
            policy = policies[name]
        else:
            policy = defaults.get(name, ResiliencePolicy())
        wrapped[name] = ResilientService(inner, policy)
    return wrapped


def resilient_executor(executor, policies: Optional[PolicySpec] = None,
                       fault_plan: Optional[FaultPlan] = None):
    """A new :class:`~repro.serving.executor.PlanExecutor` over wrapped services.

    The original executor is untouched; call this again for every chaos run
    so breakers and call logs start from scratch (which is what makes
    ``repro serve-bench --chaos SEED`` replay identically).
    """
    from repro.serving.executor import PlanExecutor

    return PlanExecutor(
        wrap_services(executor.services, policies, fault_plan),
        plan=executor.plan,
        max_workers=executor.max_workers,
        trace_seed=executor.trace_seed,
        metrics=executor.metrics,
    )
