"""Service-oriented serving layer: Service envelopes, query plans, backends.

The paper's headline results treat Sirius as a set of datacenter services
(per-service latency, M/M/1 queueing, throughput at load).  This package
gives the reproduction that architecture explicitly:

- :mod:`repro.serving.service` — the uniform :class:`Service` interface
  (typed request/response envelopes, ``warmup()``, per-call stats) with
  ASR/QA/IMM/classifier wrappers;
- :mod:`repro.serving.plan` — the query planner compiling each
  :class:`~repro.core.query.QueryType` into a DAG of service stages;
- :mod:`repro.serving.backends` — the execution-backend registry
  (``serial`` / ``thread`` / ``process``) shared with
  :mod:`repro.suite.parallel`;
- :mod:`repro.serving.executor` — the plan executor, with bounded
  concurrency and cross-query micro-batching of independent stages.

:class:`~repro.core.pipeline.SiriusPipeline` is a thin facade over this
layer.  See ``docs/SERVING.md`` for the architecture.
"""

from repro.serving.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    default_workers,
    get_backend,
    register_backend,
)
from repro.serving.plan import GUARDS, PlanStage, QueryPlan, compile_plan, full_plan
from repro.serving.service import (
    AsrService,
    ClassifierService,
    ImmService,
    QaService,
    Service,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
)
from repro.serving.executor import ExecutionState, PlanExecutor, build_executor

__all__ = [
    "AsrService",
    "ClassifierService",
    "ExecutionBackend",
    "ExecutionState",
    "GUARDS",
    "ImmService",
    "PlanExecutor",
    "PlanStage",
    "ProcessBackend",
    "QaService",
    "QueryPlan",
    "SerialBackend",
    "Service",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "ThreadBackend",
    "available_backends",
    "build_executor",
    "compile_plan",
    "default_workers",
    "full_plan",
    "get_backend",
    "register_backend",
]
