"""Service-oriented serving layer: Service envelopes, query plans, backends.

The paper's headline results treat Sirius as a set of datacenter services
(per-service latency, M/M/1 queueing, throughput at load).  This package
gives the reproduction that architecture explicitly:

- :mod:`repro.serving.service` — the uniform :class:`Service` interface
  (typed request/response envelopes, ``warmup()``, per-call stats) with
  ASR/QA/IMM/classifier wrappers;
- :mod:`repro.serving.plan` — the query planner compiling each
  :class:`~repro.core.query.QueryType` into a DAG of service stages;
- :mod:`repro.serving.backends` — the execution-backend registry
  (``serial`` / ``thread`` / ``process``) shared with
  :mod:`repro.suite.parallel`;
- :mod:`repro.serving.executor` — the plan executor, with bounded
  concurrency, cross-query micro-batching of independent stages, and
  graceful degradation when a service fails;
- :mod:`repro.serving.resilience` — deadlines, bounded seeded-jitter
  retries, and per-service circuit breakers applied by the
  :class:`ResilientService` decorator;
- :mod:`repro.serving.faults` — the deterministic, seeded fault-injection
  harness (:class:`FaultPlan` / :class:`FaultInjector`) behind the chaos
  test suite and ``repro serve-bench --chaos``;
- :mod:`repro.serving.sessions` — the streaming session protocol
  (``feed`` / ``partials`` / ``finish`` / ``cancel``) every service
  supports via ``open_session()``, with real incremental decoding for ASR;
- :mod:`repro.serving.gateway` — the asyncio front door multiplexing many
  concurrent slow-arriving voice sessions, with VAD endpointing firing
  downstream stages and barge-in cancellation.  See ``docs/STREAMING.md``;
- :mod:`repro.serving.cluster` — the fleet layer: sharded replica
  executors behind a pluggable router, seeded admission control, an SLO
  autoscaler, and the virtual-time traffic-replay driver.  See
  ``docs/CLUSTER.md``.

:class:`~repro.core.pipeline.SiriusPipeline` is a thin facade over this
layer.  See ``docs/SERVING.md`` for the architecture.
"""

from repro.serving.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    default_workers,
    get_backend,
    register_backend,
)
from repro.serving.plan import GUARDS, PlanStage, QueryPlan, compile_plan, full_plan
from repro.serving.service import (
    ASR,
    CLASSIFY,
    IMM,
    QA,
    AsrService,
    ClassifierService,
    ImmService,
    QaService,
    Service,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
)
from repro.serving.executor import (
    FATAL_SERVICES,
    ExecutionState,
    PlanExecutor,
    RouterTicket,
    build_executor,
)
from repro.serving.faults import (
    CorruptPayload,
    FaultInjector,
    FaultPlan,
    FaultRule,
    VirtualLatencyAware,
    charge_virtual_seconds,
    default_chaos_plan,
    drain_virtual_seconds,
)
from repro.serving.sessions import (
    AsrStreamingSession,
    BufferingSession,
    ServiceSession,
    StageOutcome,
)
from repro.serving.gateway import (
    GatewaySession,
    StreamingGateway,
    StreamReport,
    chunk_waveform,
    serve_streams,
)
from repro.serving.resilience import (
    BreakerPolicy,
    CallRecord,
    CircuitBreaker,
    ResiliencePolicy,
    ResilientService,
    RetryPolicy,
    default_policies,
    resilient_executor,
    wrap_services,
)

__all__ = [
    "ASR",
    "AsrService",
    "AsrStreamingSession",
    "BufferingSession",
    "CLASSIFY",
    "IMM",
    "QA",
    "BreakerPolicy",
    "CallRecord",
    "CircuitBreaker",
    "ClassifierService",
    "CorruptPayload",
    "ExecutionBackend",
    "ExecutionState",
    "FATAL_SERVICES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "GUARDS",
    "GatewaySession",
    "ImmService",
    "PlanExecutor",
    "PlanStage",
    "ProcessBackend",
    "QaService",
    "QueryPlan",
    "ResiliencePolicy",
    "ResilientService",
    "RetryPolicy",
    "RouterTicket",
    "SerialBackend",
    "Service",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceSession",
    "ServiceStats",
    "StageOutcome",
    "StreamReport",
    "StreamingGateway",
    "ThreadBackend",
    "VirtualLatencyAware",
    "available_backends",
    "build_executor",
    "charge_virtual_seconds",
    "chunk_waveform",
    "compile_plan",
    "default_chaos_plan",
    "default_policies",
    "default_workers",
    "drain_virtual_seconds",
    "full_plan",
    "get_backend",
    "register_backend",
    "resilient_executor",
    "serve_streams",
    "wrap_services",
]
