"""Query planner: compile each query class into a DAG of service stages.

Table 1 of the paper defines which services a query class exercises
(VC → ASR; VQ → ASR+QA; VIQ → ASR+QA+IMM).  Here that taxonomy becomes an
explicit :class:`QueryPlan` — a small DAG of :class:`PlanStage` nodes —
that the executor walks.  Stages at the same DAG depth are independent,
which is what lets the executor overlap a VIQ query's QA and IMM branches
(the Lucida-style service parallelism) and micro-batch the same stage
across many queries.

A live query's class is not known until after classification, so
:func:`full_plan` compiles the *speculative* plan with guard conditions
(``when=...``) that the executor evaluates once the transcript and
classification exist; :func:`compile_plan` returns the static per-class
DAGs used when the query class is known up front (benchmarks, simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.query import QueryType
from repro.errors import ConfigurationError
from repro.serving.service import ASR, CLASSIFY, IMM, QA


def _has_image(state) -> bool:
    return state.query.image is not None


def _needs_answer(state) -> bool:
    # A pure voice command (action, no image) short-circuits back to the
    # device; everything else gets a QA pass.
    return not (state.classification.is_action and state.query.image is None)


#: Named guard conditions a stage may carry; evaluated against the
#: executor's per-query state once upstream stages have run.
GUARDS: Dict[str, Callable[..., bool]] = {
    "has_image": _has_image,
    "needs_answer": _needs_answer,
}


@dataclass(frozen=True)
class PlanStage:
    """One node of a query plan."""

    name: str                    #: stage name (= service registry key)
    service: str                 #: which service executes this stage
    after: Tuple[str, ...] = ()  #: stage names that must complete first
    when: str = ""               #: guard name ('' = unconditional)
    record: bool = True          #: open a profiler section + service_seconds

    def guard(self) -> Callable[..., bool]:
        if not self.when:
            return lambda state: True
        try:
            return GUARDS[self.when]
        except KeyError:
            raise ConfigurationError(
                f"stage {self.name!r} references unknown guard {self.when!r}"
            ) from None


@dataclass(frozen=True)
class QueryPlan:
    """A validated DAG of service stages for one query class."""

    name: str
    stages: Tuple[PlanStage, ...]

    def __post_init__(self) -> None:
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"plan {self.name!r} has duplicate stage names")
        known = set(names)
        for stage in self.stages:
            for dep in stage.after:
                if dep not in known:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
            stage.guard()  # validate guard names at compile time
        self.levels()  # raises on cycles

    def levels(self) -> Tuple[Tuple[PlanStage, ...], ...]:
        """Stages grouped by DAG depth (Kahn waves), declaration-ordered.

        Every stage in one level is independent of the others, so a level
        is the unit of intra-query parallelism and of cross-query
        micro-batching.
        """
        remaining = list(self.stages)
        done: set = set()
        waves: List[Tuple[PlanStage, ...]] = []
        while remaining:
            ready = tuple(
                stage for stage in remaining if set(stage.after) <= done
            )
            if not ready:
                cyclic = ", ".join(stage.name for stage in remaining)
                raise ConfigurationError(
                    f"plan {self.name!r} has a dependency cycle among: {cyclic}"
                )
            waves.append(ready)
            done.update(stage.name for stage in ready)
            remaining = [stage for stage in remaining if stage.name not in done]
        return tuple(waves)

    def order(self) -> Tuple[PlanStage, ...]:
        """Deterministic topological order (levels flattened)."""
        return tuple(stage for level in self.levels() for stage in level)

    def services(self) -> Tuple[str, ...]:
        """Distinct services the plan touches, in execution order."""
        seen: List[str] = []
        for stage in self.order():
            if stage.service not in seen:
                seen.append(stage.service)
        return tuple(seen)


def full_plan() -> QueryPlan:
    """The speculative runtime plan covering all three query classes.

    IMM and QA are guarded: which of them actually run is decided by the
    executor after ASR + classification, reproducing the monolithic
    pipeline's branching exactly.
    """
    return QueryPlan(
        name="sirius",
        stages=(
            PlanStage(name=ASR, service=ASR),
            PlanStage(name=CLASSIFY, service=CLASSIFY, after=(ASR,), record=False),
            PlanStage(name=IMM, service=IMM, after=(CLASSIFY,), when="has_image"),
            PlanStage(name=QA, service=QA, after=(CLASSIFY,), when="needs_answer"),
        ),
    )


def compile_plan(query_type: QueryType) -> QueryPlan:
    """Static plan for a known query class (Table 1 row → DAG)."""
    stages: List[PlanStage] = [
        PlanStage(name=ASR, service=ASR),
        PlanStage(name=CLASSIFY, service=CLASSIFY, after=(ASR,), record=False),
    ]
    if query_type is QueryType.VOICE_IMAGE_QUERY:
        stages.append(PlanStage(name=IMM, service=IMM, after=(CLASSIFY,)))
    if query_type in (QueryType.VOICE_QUERY, QueryType.VOICE_IMAGE_QUERY):
        stages.append(PlanStage(name=QA, service=QA, after=(CLASSIFY,)))
    return QueryPlan(name=query_type.value.lower(), stages=tuple(stages))
