"""The uniform ``Service`` interface of the serving layer.

The paper treats ASR, QA, and IMM as datacenter *services* — the unit of
latency measurement (Figs 7/8), queueing (Fig 17), and provisioning
(Tables 8/9).  This module gives each of them one shape: a typed
request/response envelope, a ``warmup()`` hook for lazy state (index
builds, first-call caches), a profiled ``__call__``, and a ``call_batch``
that dispatches many independent requests through one execution backend —
the micro-batching lever the executor pulls for cross-query batching.

The wrappers are thin on purpose: all algorithmic behaviour stays in
``repro.asr`` / ``repro.qa`` / ``repro.imm``; the serving layer only adds
envelopes and uniform instrumentation.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import SiriusError
from repro.obs.context import use_tracer
from repro.obs.trace import Span, TraceContext, Tracer
from repro.profiling import Profile, Profiler
from repro.serving.backends import ExecutionBackend, get_backend

#: Canonical service registry keys (also the profiler section names).
ASR = "asr"
CLASSIFY = "classify"
QA = "qa"
IMM = "imm"


@dataclass(frozen=True)
class ServiceRequest:
    """Uniform request envelope.

    ``payload`` is the service's natural input (a ``Waveform`` for ASR, a
    question string for QA, an ``Image`` for IMM); ``query`` optionally
    carries the originating :class:`~repro.core.query.IPAQuery` for
    services that need surrounding context.

    ``ordinal`` is the query's position in its ``run_all`` stream and
    ``attempt`` the retry attempt number — together the deterministic key
    the resilience layer uses to seed jitter and replay injected faults
    identically on every backend (see :mod:`repro.serving.faults`).

    ``trace`` carries the parent span's picklable coordinates when the
    call is part of a traced query: the service resumes the trace in its
    own thread/process and ships the recorded spans back on the response
    (see :mod:`repro.obs.trace`).  ``admitted_at`` is the dispatcher's
    ``perf_counter`` reading when the request was handed to a backend, so
    the service can measure queueing delay (``ServiceStats.wait_seconds``)
    separately from service time.
    """

    payload: Any
    query: Any = None
    ordinal: int = 0
    attempt: int = 0
    trace: Optional[TraceContext] = None
    admitted_at: Optional[float] = None


@dataclass(frozen=True)
class ServiceStats:
    """Per-call measurements, recorded uniformly for every stage."""

    service: str            #: service label, e.g. ``"ASR"``
    seconds: float          #: wall seconds spent inside the service call
    batch_size: int = 1     #: requests served by the dispatch this came from
    wait_seconds: float = 0.0  #: admission → invoke-start queueing delay


@dataclass
class ServiceResponse:
    """Uniform response envelope: the service's natural output + metrics."""

    payload: Any
    stats: ServiceStats
    profile: Profile = field(default_factory=Profile)
    spans: Tuple[Span, ...] = ()  #: spans recorded by a traced worker-side call


class Service(abc.ABC):
    """One Sirius service behind the uniform serving interface."""

    #: Profiler section / registry key, e.g. ``"asr"``.
    name: str = ""
    #: ``SiriusResponse.service_seconds`` label, e.g. ``"ASR"``.
    label: str = ""

    @abc.abstractmethod
    def invoke(self, request: ServiceRequest, profiler: Profiler) -> Any:
        """Run the wrapped component; returns its natural result object."""

    def warmup(self) -> None:
        """Materialize lazy state so the first real query pays no setup."""

    def open_session(
        self,
        *,
        query: Any = None,
        ordinal: int = 0,
        seed: Optional[int] = None,
        record: bool = True,
        endpoint_config: Any = None,
    ):
        """Open a streaming session for one query's stage (see
        :mod:`repro.serving.sessions`).

        The default is a :class:`~repro.serving.sessions.BufferingSession`:
        chunks accumulate and ``finish()`` makes one ordinary ``invoke``
        through *this* service — wrappers (resilience, fault injection)
        inherit it, so their retry/fault behaviour under a session is
        byte-identical to the batch path.  Services with a genuinely
        incremental implementation override this (see
        :meth:`AsrService.open_session`).
        """
        # Imported lazily: sessions sits above the service layer.
        from repro.serving.sessions import BufferingSession

        return BufferingSession(
            self, query=query, ordinal=ordinal, seed=seed,
            record=record, endpoint_config=endpoint_config,
        )

    def __call__(
        self, request: ServiceRequest, profiler: Optional[Profiler] = None
    ) -> ServiceResponse:
        """One instrumented call: payload + :class:`ServiceStats` + profile.

        When the request carries a :class:`~repro.obs.trace.TraceContext`
        the call resumes the query's trace in this thread/process, wraps
        itself in a service span, and ships the recorded spans home on the
        response (or, on failure, on the exception's ``__sirius_spans__``
        so the dispatcher can still adopt them).
        """
        if request.trace is None:
            return self._timed_call(request, profiler)
        tracer = Tracer.resume(request.trace)
        with use_tracer(tracer):
            try:
                with tracer.span(self.name, kind="service", service=self.label) as span:
                    response = self._timed_call(request, profiler)
                    span.wait = response.stats.wait_seconds
            except SiriusError as exc:
                exc.__sirius_spans__ = tracer.finish()
                raise
        response.spans = tracer.finish()
        return response

    def _timed_call(
        self, request: ServiceRequest, profiler: Optional[Profiler] = None
    ) -> ServiceResponse:
        profiler = profiler if profiler is not None else Profiler()
        start = time.perf_counter()
        wait = 0.0
        if request.admitted_at is not None:
            wait = max(start - request.admitted_at, 0.0)
        payload = self.invoke(request, profiler)
        seconds = time.perf_counter() - start
        return ServiceResponse(
            payload=payload,
            stats=ServiceStats(
                service=self.label, seconds=seconds, wait_seconds=wait
            ),
            profile=profiler.profile,
        )

    def call_batch(
        self,
        requests: Sequence[ServiceRequest],
        backend: Any = "serial",
        workers: Optional[int] = None,
    ) -> List[ServiceResponse]:
        """Serve many independent requests through one backend dispatch.

        Each request gets a fresh profiler (so the batch can fan out to
        threads or forked processes without sharing timer state); the
        returned stats carry the batch size so throughput accounting can
        distinguish batched from sequential dispatch.
        """
        resolved: ExecutionBackend = (
            backend if isinstance(backend, ExecutionBackend) else get_backend(backend)
        )
        responses = resolved.map(self.__call__, list(requests), workers=workers)
        # replace() (not a rebuild) so measured fields the stats may grow —
        # wait_seconds today — survive the batch-size restamp.
        return [
            ServiceResponse(
                payload=response.payload,
                stats=replace(response.stats, batch_size=len(requests)),
                profile=response.profile,
                spans=response.spans,
            )
            for response in responses
        ]

    def __repr__(self) -> str:
        return f"<Service {self.name}>"


class AsrService(Service):
    """Speech recognition over a :class:`~repro.asr.decoder.Decoder`."""

    name = ASR
    label = "ASR"

    def __init__(self, decoder):
        self.decoder = decoder

    def invoke(self, request: ServiceRequest, profiler: Profiler):
        return self.decoder.decode_waveform(request.payload, profiler=profiler)

    def open_session(
        self,
        *,
        query: Any = None,
        ordinal: int = 0,
        seed: Optional[int] = None,
        record: bool = True,
        endpoint_config: Any = None,
    ):
        """Incremental recognition with VAD endpointing and partials.

        Only the *bare* ASR service streams incrementally; once wrapped in
        resilience/fault layers the inherited buffering session applies
        (retries need the whole utterance to replay an attempt).
        """
        from repro.serving.sessions import AsrStreamingSession

        return AsrStreamingSession(
            self, self.decoder, query=query, ordinal=ordinal, seed=seed,
            record=record, endpoint_config=endpoint_config,
        )


class ClassifierService(Service):
    """Query classification (action vs. question).

    Classification is glue, not one of the paper's measured services, so
    the default query plans mark its stage ``record=False`` — it runs
    un-sectioned and contributes no ``service_seconds`` entry, exactly as
    the monolithic pipeline behaved.
    """

    name = CLASSIFY
    label = "CLASSIFY"

    def __init__(self, classifier):
        self.classifier = classifier

    def invoke(self, request: ServiceRequest, profiler: Profiler):  # noqa: ARG002
        return self.classifier.classify(request.payload)


class QaService(Service):
    """Question answering over a :class:`~repro.qa.engine.QAEngine`."""

    name = QA
    label = "QA"

    def __init__(self, engine):
        self.engine = engine

    def invoke(self, request: ServiceRequest, profiler: Profiler):
        # An unrecognized utterance still gets a QA pass (the pipeline's
        # historical `transcript or "?"` contract).
        return self.engine.answer(request.payload or "?", profiler=profiler)


class ImmService(Service):
    """Image matching over an :class:`~repro.imm.database.ImageDatabase`."""

    name = IMM
    label = "IMM"

    def __init__(self, database):
        self.database = database

    def warmup(self) -> None:
        # Build the pooled ANN matcher now; otherwise the first matched
        # query pays the k-d tree construction.
        self.database._ensure_matcher()

    def invoke(self, request: ServiceRequest, profiler: Profiler):
        return self.database.match(request.payload, profiler=profiler)
