"""Plan executor: runs query plans over services with pluggable backends.

One executor replaces the three ad-hoc execution paths the monolithic
pipeline accumulated (serial branching, the VIQ thread fork, the
list-comprehension ``process_all``) with a single walk over a
:class:`~repro.serving.plan.QueryPlan`:

- **per-query** (:meth:`PlanExecutor.run`): stages execute level by level;
  when a level holds several runnable stages and ``parallel_branches`` is
  set, the branches overlap on threads (the Lucida-style VIQ
  optimization), each under its own profiler, merged afterwards.
- **across queries** (:meth:`PlanExecutor.run_all`): whole queries fan out
  over any registered execution backend (``serial`` / ``thread`` /
  ``process``), or — with ``batch_stages=True`` — execution proceeds in
  *waves*: every query's ASR stage dispatches as one micro-batch, then
  every classification, then every surviving IMM/QA stage.  Batching the
  same stage across queries is the TPU-paper throughput lever: it amortizes
  dispatch overhead and hands the backend N independent work items at once.

Instrumentation is uniform: every recorded stage contributes a profiler
section and a ``service_seconds`` entry through the same code path,
whichever execution strategy ran it.

**Graceful degradation.**  A stage failure (any :class:`~repro.errors.
SiriusError`, typically a coded :class:`~repro.errors.ServiceError` from a
:class:`~repro.serving.resilience.ResilientService` wrapper) is classified
by which service failed:

- **IMM** — the VIQ query degrades to a VQ answer (no image match);
- **QA** — a low-confidence fallback response is returned (transcript
  preserved, empty answer);
- **ASR / classify** — fatal: nothing downstream can run, so the query
  fails (:meth:`run` re-raises; :meth:`run_all` with ``on_error="degrade"``
  returns a failed response instead so one bad query cannot abort a
  stream).

Every degraded or failed response carries ``degraded=True`` and a
``failures`` map of service label → stable error code.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.query import IPAQuery, QueryType, SiriusResponse
from repro.errors import ConfigurationError, SiriusError
from repro.obs.context import use_tracer
from repro.obs.metrics import (
    MetricsRegistry,
    QUEUE_DEPTH_HISTOGRAM,
    ROUTER_WAIT_HISTOGRAM,
    record_responses,
    wait_histogram_name,
)
from repro.obs.trace import ROUTER, Tracer
from repro.profiling import Profiler
from repro.serving.backends import get_backend
from repro.serving.faults import drain_virtual_seconds
from repro.serving.plan import QueryPlan, PlanStage, full_plan
from repro.serving.service import (
    ASR,
    CLASSIFY,
    IMM,
    QA,
    Service,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
)

#: Services whose failure fails the whole query (everything hangs off the
#: transcript and its classification); QA and IMM failures degrade instead.
FATAL_SERVICES = frozenset({ASR, CLASSIFY})

#: Accepted ``on_error`` modes for :meth:`PlanExecutor.run` / ``run_all``.
RAISE = "raise"
DEGRADE = "degrade"


@dataclass
class ExecutionState:
    """Per-query scratchpad the guards and request builders read."""

    query: IPAQuery
    profiler: Profiler
    wall_start: float
    ordinal: int = 0
    service_seconds: Dict[str, float] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    transcript: str = ""
    classification: Any = None
    #: Failing service label -> stable error code, in failure order.
    failures: Dict[str, str] = field(default_factory=dict)
    #: The fatal (ASR/classify) error, when one occurred.
    fatal_error: Optional[SiriusError] = None
    #: Injected virtual latency accumulated across this query's stages.
    virtual_seconds: float = 0.0
    #: This query's tracer / open root span / picklable parent coordinates
    #: (all ``None`` when the executor runs untraced).
    tracer: Any = None
    root_span: Any = None
    trace_ctx: Any = None


def _asr_request(state: ExecutionState) -> ServiceRequest:
    return ServiceRequest(
        payload=state.query.audio, query=state.query, ordinal=state.ordinal,
        trace=state.trace_ctx, admitted_at=time.perf_counter(),
    )


def _text_request(state: ExecutionState) -> ServiceRequest:
    return ServiceRequest(
        payload=state.transcript, query=state.query, ordinal=state.ordinal,
        trace=state.trace_ctx, admitted_at=time.perf_counter(),
    )


def _image_request(state: ExecutionState) -> ServiceRequest:
    return ServiceRequest(
        payload=state.query.image, query=state.query, ordinal=state.ordinal,
        trace=state.trace_ctx, admitted_at=time.perf_counter(),
    )


_REQUEST_BUILDERS: Dict[str, Callable[[ExecutionState], ServiceRequest]] = {
    ASR: _asr_request,
    CLASSIFY: _text_request,
    QA: _text_request,
    IMM: _image_request,
}


@dataclass(frozen=True)
class RouterTicket:
    """A cluster router's placement record for one query.

    Handed to :meth:`PlanExecutor.run` by :class:`repro.serving.cluster.
    fleet.Cluster` so time spent *queued at the router* is attributed to a
    dedicated ``router`` span instead of being folded into the first
    service's self time (or lost entirely).  ``policy``/``replica``/
    ``queue_depth`` are pure functions of ``(seed, ordinal)`` and live in
    span attributes; ``enqueued_at`` is a measured ``perf_counter`` reading
    and only ever feeds the span's timing fields, so timing-stripped
    exports stay byte-identical across backends.
    """

    policy: str                        #: routing policy name (e.g. "power-of-two")
    replica: int                       #: chosen replica index
    n_replicas: int = 1                #: fleet size at assignment time
    queue_depth: int = 0               #: chosen replica's depth seen by the router
    enqueued_at: Optional[float] = None  #: perf_counter at router assignment


@dataclass
class _StageFailure:
    """Per-item failure marker crossing backend boundaries in batched mode."""

    code: str
    error: SiriusError
    #: Spans the failing worker-side call recorded before it raised.
    spans: tuple = ()


def _check_on_error(on_error: str) -> None:
    if on_error not in (RAISE, DEGRADE):
        raise ConfigurationError(
            f"on_error must be {RAISE!r} or {DEGRADE!r}, got {on_error!r}"
        )


class PlanExecutor:
    """Runs :class:`QueryPlan` DAGs over a registry of services."""

    def __init__(
        self,
        services: Dict[str, Service],
        plan: Optional[QueryPlan] = None,
        max_workers: Optional[int] = None,
        trace_seed: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.services = dict(services)
        self.plan = plan if plan is not None else full_plan()
        self.max_workers = max_workers
        #: ``None`` disables tracing; any int seeds deterministic span IDs
        #: (chaos replays with the same seed export identical span forests).
        self.trace_seed = trace_seed
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` that
        #: ``run_all`` records e2e / per-service / wait latencies into.
        self.metrics = metrics
        self._check_plan(self.plan)

    def _check_plan(self, plan: QueryPlan) -> None:
        for stage in plan.stages:
            if stage.service not in self.services:
                raise ConfigurationError(
                    f"plan stage {stage.name!r} needs service {stage.service!r}, "
                    f"which is not registered (have: {sorted(self.services)})"
                )
            if stage.service not in _REQUEST_BUILDERS:
                raise ConfigurationError(
                    f"no request builder for service {stage.service!r}"
                )

    def warmup(self) -> None:
        """Warm every registered service (index builds, lazy caches)."""
        for service in self.services.values():
            service.warmup()

    # -- per-query execution -----------------------------------------------------

    def run(
        self,
        query: IPAQuery,
        profiler: Optional[Profiler] = None,
        plan: Optional[QueryPlan] = None,
        parallel_branches: bool = False,
        ordinal: int = 0,
        on_error: str = RAISE,
        precomputed: Optional[Dict[str, Any]] = None,
        wall_start: Optional[float] = None,
        router_ticket: Optional[RouterTicket] = None,
    ) -> SiriusResponse:
        """Run one query through its plan and assemble the response.

        A degradable (QA/IMM) failure always yields a degraded response; a
        fatal (ASR/classify) failure re-raises under ``on_error="raise"``
        (the default) or returns a failed response under ``"degrade"``.

        ``precomputed`` maps service names to :class:`~repro.serving.
        sessions.StageOutcome` objects a streaming session already
        produced: those stages are *consumed* (spans adopted, profile
        merged, failures classified) instead of executed, and the rest of
        the plan runs normally — how the gateway fires classify/QA/IMM off
        a finished ASR session.  ``wall_start`` backdates the query's clock
        (and its root span) to when the session opened, so ``wall_seconds``
        and time-to-first-partial measure from first audio, not from
        ``run()``.

        ``router_ticket`` records that a cluster router queued and placed
        this query: the clock (and root span) is backdated to the ticket's
        ``enqueued_at``, and the assignment-to-dispatch delay is emitted as
        a dedicated ``router`` span (stage label ``ROUTER``, the whole
        window counted as wait) so queue time at the router is never folded
        into any service's self time.
        """
        _check_on_error(on_error)
        plan = plan if plan is not None else self.plan
        if plan is not self.plan:
            self._check_plan(plan)
        precomputed = dict(precomputed) if precomputed else {}
        if (
            wall_start is None
            and router_ticket is not None
            and router_ticket.enqueued_at is not None
        ):
            # The query's clock starts when the router accepted it, so
            # wall_seconds covers the queueing delay the user experienced.
            wall_start = router_ticket.enqueued_at
        state = ExecutionState(
            query=query,
            profiler=profiler if profiler is not None else Profiler(),
            wall_start=wall_start if wall_start is not None else time.perf_counter(),
            ordinal=ordinal,
        )
        self._begin_trace(state)
        if wall_start is not None and state.root_span is not None:
            # The root span's measured window starts at session open; its
            # identity is unaffected (IDs are position-derived, not timed).
            state.root_span.start = wall_start
        if router_ticket is not None:
            self._record_router(state, router_ticket)
        ambient = (
            use_tracer(state.tracer) if state.tracer is not None else nullcontext()
        )
        try:
            with ambient:
                for level in plan.levels():
                    runnable = [stage for stage in level if stage.guard()(state)]
                    ready = [s for s in runnable if s.service in precomputed]
                    live = [s for s in runnable if s.service not in precomputed]
                    for stage in ready:
                        self._consume_precomputed(
                            stage, state, precomputed[stage.service]
                        )
                    if parallel_branches and len(live) > 1:
                        self._run_level_threaded(live, state)
                    else:
                        for stage in live:
                            self._run_stage(stage, state)
        except SiriusError as exc:
            if on_error == RAISE or state.fatal_error is None:
                if state.tracer is not None:
                    state.tracer.end_span(
                        state.root_span, status="error",
                        error_code=getattr(exc, "code", "SIRIUS"),
                    )
                    exc.__sirius_spans__ = state.tracer.finish()
                raise
        return self._build_response(state)

    def _record_router(self, state: ExecutionState, ticket: RouterTicket) -> None:
        """Materialize the router's placement as a span and metrics.

        The span covers ``[enqueued_at, dispatch]`` — the real queue window
        — with the *whole* window recorded as wait, so the critical-path
        analyzer (which clamps wait to measured self time) attributes it to
        a ``ROUTER`` stage of its own.  All attributes are deterministic
        under the run's seed; only ``start``/``end``/``wait`` are measured.
        """
        wait = 0.0
        if ticket.enqueued_at is not None:
            wait = max(time.perf_counter() - ticket.enqueued_at, 0.0)
        if state.tracer is not None:
            span = state.tracer.begin_span(
                "router",
                kind=ROUTER,
                service="ROUTER",
                attributes={
                    "policy": ticket.policy,
                    "replica": ticket.replica,
                    "n_replicas": ticket.n_replicas,
                    "queue_depth": ticket.queue_depth,
                },
            )
            if ticket.enqueued_at is not None:
                span.start = ticket.enqueued_at
            state.tracer.end_span(span)
            span.wait = span.duration
        if self.metrics is not None:
            if wait > 0:
                self.metrics.histogram(ROUTER_WAIT_HISTOGRAM).observe(wait)
            self.metrics.histogram(QUEUE_DEPTH_HISTOGRAM).observe(
                float(ticket.queue_depth)
            )

    def _begin_trace(self, state: ExecutionState) -> None:
        """Open the query's root span when tracing is enabled.

        Each query gets its *own* tracer (IDs are deterministic functions of
        ``(trace_seed, ordinal)``, so per-query tracers and one shared
        tracer would mint identical spans) — which keeps root spans on
        independent stacks in batched mode and keeps the whole tracer local
        to a worker when ``run`` executes in another thread or process.
        """
        if self.trace_seed is None:
            return
        state.tracer = Tracer(seed=self.trace_seed)
        state.root_span = state.tracer.begin_trace(state.ordinal)
        state.trace_ctx = state.tracer.context()

    def _request(self, stage: PlanStage, state: ExecutionState) -> ServiceRequest:
        return _REQUEST_BUILDERS[stage.service](state)

    def _absorb(self, stage: PlanStage, state: ExecutionState, payload: Any) -> None:
        state.results[stage.name] = payload
        if stage.service == ASR:
            state.transcript = payload.text
        elif stage.service == CLASSIFY:
            state.classification = payload

    def _record_failure(
        self, stage: PlanStage, state: ExecutionState, exc: SiriusError
    ) -> None:
        """Classify a stage failure; fatal services re-raise, others degrade."""
        service = self.services[stage.service]
        state.failures[service.label] = exc.code
        if stage.service in FATAL_SERVICES:
            state.fatal_error = exc
            raise exc

    def _run_stage(self, stage: PlanStage, state: ExecutionState) -> None:
        """Serial stage execution: section the shared profiler, record time.

        ``service_seconds`` gets the stage's *profiled* delta (total profile
        growth while the section was open), matching how the monolithic
        pipeline attributed per-service time on the serial path, plus any
        virtual latency a fault injector charged during the call.
        """
        service = self.services[stage.service]
        request = self._request(stage, state)
        drain_virtual_seconds()
        before = state.profiler.profile.total
        span = None
        if state.tracer is not None:
            span = state.tracer.begin_span(
                service.name, kind="service", service=service.label
            )
        try:
            if stage.record:
                with state.profiler.section(service.name):
                    payload = service.invoke(request, state.profiler)
            else:
                payload = service.invoke(request, state.profiler)
        except SiriusError as exc:
            virtual = drain_virtual_seconds()
            state.virtual_seconds += virtual
            if span is not None:
                if virtual > 0:
                    span.attributes["virtual_seconds"] = virtual
                state.tracer.end_span(
                    span, status="error",
                    error_code=getattr(exc, "code", "SIRIUS"),
                )
            self._record_failure(stage, state, exc)
            return
        virtual = drain_virtual_seconds()
        state.virtual_seconds += virtual
        if span is not None:
            if virtual > 0:
                span.attributes["virtual_seconds"] = virtual
            state.tracer.end_span(span)
        if stage.record:
            state.service_seconds[service.label] = (
                state.profiler.profile.total - before + virtual
            )
        self._absorb(stage, state, payload)

    def _consume_precomputed(self, stage: PlanStage, state: ExecutionState, outcome) -> None:
        """Absorb a session's :class:`~repro.serving.sessions.StageOutcome`.

        Mirrors the threaded-branch absorption path: adopt the session's
        spans, fold its virtual latency and profile into the query's
        accounting, classify a captured failure exactly as a live one
        (fatal services re-raise through :meth:`_record_failure`), and
        credit ``service_seconds`` with the session's ``_run_stage``-rule
        attribution.
        """
        service = self.services[stage.service]
        if state.tracer is not None:
            state.tracer.adopt(outcome.spans)
        state.virtual_seconds += outcome.virtual_seconds
        if outcome.error is not None:
            self._record_failure(stage, state, outcome.error)
            return
        state.profiler.profile.merge(outcome.profile)
        if stage.record:
            state.service_seconds[service.label] = outcome.seconds
        self._absorb(stage, state, outcome.payload)

    def _run_level_threaded(
        self, stages: Sequence[PlanStage], state: ExecutionState
    ) -> None:
        """Overlap one level's independent stages on threads.

        Each branch runs under its own profiler (wall-clock sections from
        two threads would double-count in one); profiles merge back in
        declaration order, and each recorded stage's ``service_seconds`` is
        its branch's own elapsed wall time.  A branch failure degrades that
        branch alone — the sibling's result is kept either way.
        """
        services = [self.services[stage.service] for stage in stages]
        requests = [self._request(stage, state) for stage in stages]
        with ThreadPoolExecutor(max_workers=len(stages)) as pool:
            futures = [
                pool.submit(service, request)
                for service, request in zip(services, requests)
            ]
            outcomes: List[Union[ServiceResponse, SiriusError]] = []
            for future in futures:
                try:
                    outcomes.append(future.result())
                except SiriusError as exc:
                    outcomes.append(exc)
        for stage, service, outcome in zip(stages, services, outcomes):
            if isinstance(outcome, SiriusError):
                if state.tracer is not None:
                    state.tracer.adopt(getattr(outcome, "__sirius_spans__", ()))
                self._record_failure(stage, state, outcome)
                continue
            if state.tracer is not None:
                state.tracer.adopt(outcome.spans)
            if self.metrics is not None and outcome.stats.wait_seconds > 0:
                self.metrics.histogram(
                    wait_histogram_name(outcome.stats.service)
                ).observe(outcome.stats.wait_seconds)
            state.profiler.profile.merge(outcome.profile)
            if stage.record:
                state.service_seconds[service.label] = outcome.stats.seconds
            self._absorb(stage, state, outcome.payload)

    def _build_response(self, state: ExecutionState) -> SiriusResponse:
        """Assemble the response; when traced, close and attach the trace."""
        response = self._assemble_response(state)
        if state.tracer is not None:
            root = state.root_span
            root.attributes["query_type"] = response.query_type.value
            if response.degraded:
                root.attributes["degraded"] = True
            if response.failed:
                root.attributes["failed"] = True
            if state.virtual_seconds > 0:
                root.attributes["virtual_seconds"] = state.virtual_seconds
            if state.fatal_error is not None:
                state.tracer.end_span(
                    root, status="error",
                    error_code=getattr(state.fatal_error, "code", "SIRIUS"),
                )
            else:
                state.tracer.end_span(root)
            response.spans = state.tracer.finish()
        return response

    def _assemble_response(self, state: ExecutionState) -> SiriusResponse:
        wall = time.perf_counter() - state.wall_start + state.virtual_seconds
        failures = dict(state.failures)
        degraded = bool(failures)
        if state.fatal_error is not None:
            # Nothing usable: ASR or classification died.  Class the failed
            # query by the only evidence left (an attached image).
            query_type = (
                QueryType.VOICE_IMAGE_QUERY
                if state.query.image is not None
                else QueryType.VOICE_COMMAND
            )
            return SiriusResponse(
                query_type=query_type,
                transcript=state.transcript,
                profile=state.profiler.profile,
                service_seconds=state.service_seconds,
                wall_seconds=wall,
                degraded=True,
                failures=failures,
            )
        qa_result = state.results.get(QA)
        qa_failed = "QA" in failures
        if qa_result is None and not qa_failed:
            # No QA stage ran: a pure voice command echoed back to the device.
            return SiriusResponse(
                query_type=QueryType.VOICE_COMMAND,
                transcript=state.transcript,
                action=state.transcript,
                profile=state.profiler.profile,
                service_seconds=state.service_seconds,
                wall_seconds=wall,
                degraded=degraded,
                failures=failures,
            )
        match = state.results.get(IMM)
        if state.query.image is None:
            query_type = QueryType.VOICE_QUERY
        elif "IMM" in failures:
            # The image-match branch failed: serve the VIQ as a plain VQ.
            query_type = QueryType.VOICE_QUERY
        else:
            query_type = QueryType.VOICE_IMAGE_QUERY
        return SiriusResponse(
            query_type=query_type,
            transcript=state.transcript,
            answer=qa_result.answer_text if qa_result is not None else "",
            matched_image=match.image_name if match is not None else "",
            profile=state.profiler.profile,
            service_seconds=state.service_seconds,
            filter_hits=qa_result.stats.total_hits if qa_result is not None else 0,
            wall_seconds=wall,
            degraded=degraded,
            failures=failures,
        )

    # -- cross-query execution ---------------------------------------------------

    def run_all(
        self,
        queries: Sequence[IPAQuery],
        backend: str = "serial",
        workers: Optional[int] = None,
        batch_stages: bool = False,
        parallel_branches: bool = False,
        plan: Optional[QueryPlan] = None,
        on_error: str = RAISE,
    ) -> List[SiriusResponse]:
        """Process a stream of queries.

        Without ``batch_stages``, whole queries map over the chosen backend
        (``serial`` reproduces the classic sequential ``process_all``).
        With it, execution proceeds stage-wise: each plan level's surviving
        stages across *all* queries dispatch together — cross-query
        micro-batching.  Each query is stamped with its stream ``ordinal``,
        the key the resilience layer uses to replay faults identically on
        every backend.  ``on_error="degrade"`` turns fatal per-query
        failures into failed responses instead of aborting the stream.
        """
        _check_on_error(on_error)
        queries = list(queries)
        workers = workers if workers is not None else self.max_workers
        if batch_stages:
            responses = self._run_all_batched(
                queries, backend, workers, plan, on_error
            )
        else:
            resolved = get_backend(backend)

            def run_one(item) -> SiriusResponse:
                index, query = item
                return self.run(
                    query,
                    plan=plan,
                    parallel_branches=parallel_branches,
                    ordinal=index,
                    on_error=on_error,
                )

            items = list(enumerate(queries))
            if resolved.name == "serial":
                responses = [run_one(item) for item in items]
            else:
                responses = resolved.map(run_one, items, workers=workers)
        if self.metrics is not None:
            record_responses(self.metrics, responses)
        return responses

    def _run_all_batched(
        self,
        queries: List[IPAQuery],
        backend: str,
        workers: Optional[int],
        plan: Optional[QueryPlan],
        on_error: str,
    ) -> List[SiriusResponse]:
        plan = plan if plan is not None else self.plan
        if plan is not self.plan:
            self._check_plan(plan)
        start = time.perf_counter()
        states = [
            ExecutionState(
                query=query, profiler=Profiler(), wall_start=start, ordinal=index
            )
            for index, query in enumerate(queries)
        ]
        for state in states:
            # Per-state tracers hold each query's open root span in the main
            # process; stage spans are recorded worker-side (the request
            # carries the root's TraceContext) and adopted from the
            # responses below.
            self._begin_trace(state)
        for level in plan.levels():
            for stage in level:
                guard = stage.guard()
                pending = [
                    state
                    for state in states
                    if state.fatal_error is None and guard(state)
                ]
                if not pending:
                    continue
                service = self.services[stage.service]
                outcomes = self._dispatch_batch(
                    service,
                    [self._request(stage, state) for state in pending],
                    backend,
                    workers,
                )
                for state, outcome in zip(pending, outcomes):
                    if isinstance(outcome, _StageFailure):
                        if state.tracer is not None:
                            state.tracer.adopt(outcome.spans)
                        state.failures[service.label] = outcome.code
                        if stage.service in FATAL_SERVICES:
                            if on_error == RAISE:
                                raise outcome.error
                            state.fatal_error = outcome.error
                        continue
                    if state.tracer is not None:
                        state.tracer.adopt(outcome.spans)
                    state.profiler.profile.merge(outcome.profile)
                    if stage.record:
                        state.service_seconds[service.label] = outcome.stats.seconds
                    self._absorb(stage, state, outcome.payload)
        return [self._build_response(state) for state in states]

    def _dispatch_batch(
        self,
        service: Service,
        requests: List[ServiceRequest],
        backend: str,
        workers: Optional[int],
    ) -> List[Union[ServiceResponse, _StageFailure]]:
        """One stage's cross-query micro-batch, with per-item failure capture.

        A single query's failure must degrade that query alone, so the
        mapped callable converts :class:`~repro.errors.SiriusError` into a
        :class:`_StageFailure` marker instead of letting one exception kill
        the whole backend dispatch (which is what ``Service.call_batch``
        would do).  Successful stats are re-stamped with the batch size,
        matching ``call_batch``'s accounting.
        """
        def call_one(request: ServiceRequest):
            try:
                return service(request)
            except SiriusError as exc:
                return _StageFailure(
                    code=exc.code, error=exc,
                    spans=tuple(getattr(exc, "__sirius_spans__", ())),
                )

        resolved = get_backend(backend)
        outcomes = resolved.map(call_one, requests, workers=workers)
        stamped: List[Union[ServiceResponse, _StageFailure]] = []
        for outcome in outcomes:
            if isinstance(outcome, _StageFailure):
                stamped.append(outcome)
                continue
            if self.metrics is not None and outcome.stats.wait_seconds > 0:
                self.metrics.histogram(
                    wait_histogram_name(outcome.stats.service)
                ).observe(outcome.stats.wait_seconds)
            stamped.append(
                ServiceResponse(
                    # replace() keeps measured fields (wait_seconds) intact
                    # while restamping the dispatch's batch size.
                    payload=outcome.payload,
                    stats=replace(outcome.stats, batch_size=len(requests)),
                    profile=outcome.profile,
                    spans=outcome.spans,
                )
            )
        return stamped


def build_executor(
    decoder,
    classifier,
    qa_engine,
    image_database,
    plan: Optional[QueryPlan] = None,
    max_workers: Optional[int] = None,
    trace_seed: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> PlanExecutor:
    """Wrap pipeline components in services and assemble an executor."""
    from repro.serving.service import (
        AsrService,
        ClassifierService,
        ImmService,
        QaService,
    )

    services: Dict[str, Service] = {
        ASR: AsrService(decoder),
        CLASSIFY: ClassifierService(classifier),
        QA: QaService(qa_engine),
        IMM: ImmService(image_database),
    }
    return PlanExecutor(
        services, plan=plan, max_workers=max_workers,
        trace_seed=trace_seed, metrics=metrics,
    )
