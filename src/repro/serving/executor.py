"""Plan executor: runs query plans over services with pluggable backends.

One executor replaces the three ad-hoc execution paths the monolithic
pipeline accumulated (serial branching, the VIQ thread fork, the
list-comprehension ``process_all``) with a single walk over a
:class:`~repro.serving.plan.QueryPlan`:

- **per-query** (:meth:`PlanExecutor.run`): stages execute level by level;
  when a level holds several runnable stages and ``parallel_branches`` is
  set, the branches overlap on threads (the Lucida-style VIQ
  optimization), each under its own profiler, merged afterwards.
- **across queries** (:meth:`PlanExecutor.run_all`): whole queries fan out
  over any registered execution backend (``serial`` / ``thread`` /
  ``process``), or — with ``batch_stages=True`` — execution proceeds in
  *waves*: every query's ASR stage dispatches as one micro-batch, then
  every classification, then every surviving IMM/QA stage.  Batching the
  same stage across queries is the TPU-paper throughput lever: it amortizes
  dispatch overhead and hands the backend N independent work items at once.

Instrumentation is uniform: every recorded stage contributes a profiler
section and a ``service_seconds`` entry through the same code path,
whichever execution strategy ran it.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.query import IPAQuery, QueryType, SiriusResponse
from repro.errors import ConfigurationError
from repro.profiling import Profiler
from repro.serving.backends import get_backend
from repro.serving.plan import QueryPlan, PlanStage, full_plan
from repro.serving.service import ASR, CLASSIFY, IMM, QA, Service, ServiceRequest


@dataclass
class ExecutionState:
    """Per-query scratchpad the guards and request builders read."""

    query: IPAQuery
    profiler: Profiler
    wall_start: float
    service_seconds: Dict[str, float] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    transcript: str = ""
    classification: Any = None


def _asr_request(state: ExecutionState) -> ServiceRequest:
    return ServiceRequest(payload=state.query.audio, query=state.query)


def _text_request(state: ExecutionState) -> ServiceRequest:
    return ServiceRequest(payload=state.transcript, query=state.query)


def _image_request(state: ExecutionState) -> ServiceRequest:
    return ServiceRequest(payload=state.query.image, query=state.query)


_REQUEST_BUILDERS: Dict[str, Callable[[ExecutionState], ServiceRequest]] = {
    ASR: _asr_request,
    CLASSIFY: _text_request,
    QA: _text_request,
    IMM: _image_request,
}


class PlanExecutor:
    """Runs :class:`QueryPlan` DAGs over a registry of services."""

    def __init__(
        self,
        services: Dict[str, Service],
        plan: Optional[QueryPlan] = None,
        max_workers: Optional[int] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.services = dict(services)
        self.plan = plan if plan is not None else full_plan()
        self.max_workers = max_workers
        self._check_plan(self.plan)

    def _check_plan(self, plan: QueryPlan) -> None:
        for stage in plan.stages:
            if stage.service not in self.services:
                raise ConfigurationError(
                    f"plan stage {stage.name!r} needs service {stage.service!r}, "
                    f"which is not registered (have: {sorted(self.services)})"
                )
            if stage.service not in _REQUEST_BUILDERS:
                raise ConfigurationError(
                    f"no request builder for service {stage.service!r}"
                )

    def warmup(self) -> None:
        """Warm every registered service (index builds, lazy caches)."""
        for service in self.services.values():
            service.warmup()

    # -- per-query execution -----------------------------------------------------

    def run(
        self,
        query: IPAQuery,
        profiler: Optional[Profiler] = None,
        plan: Optional[QueryPlan] = None,
        parallel_branches: bool = False,
    ) -> SiriusResponse:
        """Run one query through its plan and assemble the response."""
        plan = plan if plan is not None else self.plan
        if plan is not self.plan:
            self._check_plan(plan)
        state = ExecutionState(
            query=query,
            profiler=profiler if profiler is not None else Profiler(),
            wall_start=time.perf_counter(),
        )
        for level in plan.levels():
            runnable = [stage for stage in level if stage.guard()(state)]
            if parallel_branches and len(runnable) > 1:
                self._run_level_threaded(runnable, state)
            else:
                for stage in runnable:
                    self._run_stage(stage, state)
        return self._build_response(state)

    def _request(self, stage: PlanStage, state: ExecutionState) -> ServiceRequest:
        return _REQUEST_BUILDERS[stage.service](state)

    def _absorb(self, stage: PlanStage, state: ExecutionState, payload: Any) -> None:
        state.results[stage.name] = payload
        if stage.service == ASR:
            state.transcript = payload.text
        elif stage.service == CLASSIFY:
            state.classification = payload

    def _run_stage(self, stage: PlanStage, state: ExecutionState) -> None:
        """Serial stage execution: section the shared profiler, record time.

        ``service_seconds`` gets the stage's *profiled* delta (total profile
        growth while the section was open), matching how the monolithic
        pipeline attributed per-service time on the serial path.
        """
        service = self.services[stage.service]
        request = self._request(stage, state)
        if not stage.record:
            self._absorb(stage, state, service.invoke(request, state.profiler))
            return
        before = state.profiler.profile.total
        with state.profiler.section(service.name):
            payload = service.invoke(request, state.profiler)
        state.service_seconds[service.label] = state.profiler.profile.total - before
        self._absorb(stage, state, payload)

    def _run_level_threaded(
        self, stages: Sequence[PlanStage], state: ExecutionState
    ) -> None:
        """Overlap one level's independent stages on threads.

        Each branch runs under its own profiler (wall-clock sections from
        two threads would double-count in one); profiles merge back in
        declaration order, and each recorded stage's ``service_seconds`` is
        its branch's own elapsed wall time.
        """
        services = [self.services[stage.service] for stage in stages]
        requests = [self._request(stage, state) for stage in stages]
        with ThreadPoolExecutor(max_workers=len(stages)) as pool:
            futures = [
                pool.submit(service, request)
                for service, request in zip(services, requests)
            ]
            responses = [future.result() for future in futures]
        for stage, service, response in zip(stages, services, responses):
            state.profiler.profile.merge(response.profile)
            if stage.record:
                state.service_seconds[service.label] = response.stats.seconds
            self._absorb(stage, state, response.payload)

    def _build_response(self, state: ExecutionState) -> SiriusResponse:
        qa_result = state.results.get(QA)
        wall = time.perf_counter() - state.wall_start
        if qa_result is None:
            # No QA stage ran: a pure voice command echoed back to the device.
            return SiriusResponse(
                query_type=QueryType.VOICE_COMMAND,
                transcript=state.transcript,
                action=state.transcript,
                profile=state.profiler.profile,
                service_seconds=state.service_seconds,
                wall_seconds=wall,
            )
        match = state.results.get(IMM)
        query_type = (
            QueryType.VOICE_IMAGE_QUERY
            if state.query.image is not None
            else QueryType.VOICE_QUERY
        )
        return SiriusResponse(
            query_type=query_type,
            transcript=state.transcript,
            answer=qa_result.answer_text,
            matched_image=match.image_name if match is not None else "",
            profile=state.profiler.profile,
            service_seconds=state.service_seconds,
            filter_hits=qa_result.stats.total_hits,
            wall_seconds=wall,
        )

    # -- cross-query execution ---------------------------------------------------

    def run_all(
        self,
        queries: Sequence[IPAQuery],
        backend: str = "serial",
        workers: Optional[int] = None,
        batch_stages: bool = False,
        parallel_branches: bool = False,
        plan: Optional[QueryPlan] = None,
    ) -> List[SiriusResponse]:
        """Process a stream of queries.

        Without ``batch_stages``, whole queries map over the chosen backend
        (``serial`` reproduces the classic sequential ``process_all``).
        With it, execution proceeds stage-wise: each plan level's surviving
        stages across *all* queries dispatch together through
        :meth:`Service.call_batch` — cross-query micro-batching.
        """
        queries = list(queries)
        workers = workers if workers is not None else self.max_workers
        if batch_stages:
            return self._run_all_batched(queries, backend, workers, plan)
        resolved = get_backend(backend)
        if resolved.name == "serial":
            return [
                self.run(query, plan=plan, parallel_branches=parallel_branches)
                for query in queries
            ]

        def run_one(query: IPAQuery) -> SiriusResponse:
            return self.run(query, plan=plan, parallel_branches=parallel_branches)

        return resolved.map(run_one, queries, workers=workers)

    def _run_all_batched(
        self,
        queries: List[IPAQuery],
        backend: str,
        workers: Optional[int],
        plan: Optional[QueryPlan],
    ) -> List[SiriusResponse]:
        plan = plan if plan is not None else self.plan
        if plan is not self.plan:
            self._check_plan(plan)
        start = time.perf_counter()
        states = [
            ExecutionState(query=query, profiler=Profiler(), wall_start=start)
            for query in queries
        ]
        for level in plan.levels():
            for stage in level:
                guard = stage.guard()
                pending = [state for state in states if guard(state)]
                if not pending:
                    continue
                service = self.services[stage.service]
                responses = service.call_batch(
                    [self._request(stage, state) for state in pending],
                    backend=backend,
                    workers=workers,
                )
                for state, response in zip(pending, responses):
                    state.profiler.profile.merge(response.profile)
                    if stage.record:
                        state.service_seconds[service.label] = response.stats.seconds
                    self._absorb(stage, state, response.payload)
        return [self._build_response(state) for state in states]


def build_executor(
    decoder,
    classifier,
    qa_engine,
    image_database,
    plan: Optional[QueryPlan] = None,
    max_workers: Optional[int] = None,
) -> PlanExecutor:
    """Wrap pipeline components in services and assemble an executor."""
    from repro.serving.service import (
        AsrService,
        ClassifierService,
        ImmService,
        QaService,
    )

    services: Dict[str, Service] = {
        ASR: AsrService(decoder),
        CLASSIFY: ClassifierService(classifier),
        QA: QaService(qa_engine),
        IMM: ImmService(image_database),
    }
    return PlanExecutor(services, plan=plan, max_workers=max_workers)
