"""Streaming service sessions: ``feed`` / ``partials`` / ``finish`` / ``cancel``.

A real IPA does not receive an utterance as one payload: audio trickles in
while the user speaks, the recognizer emits partial hypotheses, and the
backend fires downstream stages the moment the endpointer closes the
utterance.  This module adds that *session* shape to the serving layer
without disturbing the batch path:

- :class:`ServiceSession` — the protocol.  ``feed(chunk)`` appends input,
  ``partials()`` returns any new incremental hypotheses, ``finish()``
  produces a :class:`StageOutcome` the :class:`~repro.serving.executor.
  PlanExecutor` consumes as a precomputed stage, ``cancel()`` implements
  barge-in (the user interrupts; the utterance is abandoned).
- :class:`BufferingSession` — the default adapter every service gets for
  free: chunks buffer, and ``finish()`` makes one ordinary ``invoke``
  through the *wrapped* service — so resilience retries, fault injection,
  deadlines, and their deterministic ``(service, ordinal, attempt)`` keys
  behave byte-for-byte like the batch path.
- :class:`AsrStreamingSession` — real incremental decoding for a bare
  :class:`~repro.serving.service.AsrService`, backed by
  :class:`~repro.asr.streaming.StreamingDecoder`, with VAD endpointing from
  :class:`~repro.asr.vad.StreamingEndpointer`.

**The equivalence anchor.**  A session fed the entire utterance as one
chunk and finished *without ever polling partials* must produce a
byte-identical response — including the span forest exported with
``timing=False`` — to :meth:`PlanExecutor.run` on the same query.  The
session therefore replicates the executor's serial stage bracket exactly
(drain the virtual-latency ledger, profile a ``section(service.name)``
around ``service.invoke``, stamp ``virtual_seconds``), and
:class:`AsrStreamingSession` defers engaging the incremental decoder until
a second chunk or a ``partials()`` poll proves the caller actually streams:
the single-chunk session takes the very same ``decode_waveform`` path as
the batch executor.

**Span identity.**  The session's service span is constructed manually
with the same deterministic IDs ``PlanExecutor._run_stage`` would mint
(``span_id_for(trace, root, name, 0)``), kept open across work bouts that
may land on different threads via :meth:`~repro.obs.trace.Tracer.reenter`,
and handed to the executor inside :attr:`StageOutcome.spans` for adoption.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.asr.audio import Waveform
from repro.asr.vad import EndpointConfig, StreamingEndpointer
from repro.errors import SessionError, SiriusError
from repro.obs.context import use_tracer
from repro.obs.trace import (
    PARTIAL,
    Span,
    Tracer,
    sort_key,
    span_id_for,
    trace_id_for,
)
from repro.profiling import Profile, Profiler
from repro.serving.faults import drain_virtual_seconds
from repro.serving.service import Service, ServiceRequest

#: Session lifecycle states.
LISTENING = "listening"    #: accepting chunks
FINISHED = "finished"      #: ``finish()`` ran; outcome available
CANCELLED = "cancelled"    #: barge-in; the utterance was abandoned


@dataclass
class StageOutcome:
    """One stage's precomputed result, in the executor's own accounting terms.

    ``seconds`` is the stage's *profiled* time plus virtual latency — the
    exact value ``PlanExecutor._run_stage`` would have written to
    ``service_seconds`` had it run the stage itself.  ``spans`` carries the
    closed service span and everything recorded under it (sections,
    attempts, partials) for the executor's tracer to adopt.
    """

    service: str                   #: registry name, e.g. ``"asr"``
    label: str                     #: ``service_seconds`` label, e.g. ``"ASR"``
    payload: Any = None
    error: Optional[SiriusError] = None
    seconds: float = 0.0
    virtual_seconds: float = 0.0
    profile: Profile = field(default_factory=Profile)
    spans: Tuple[Span, ...] = ()


class ServiceSession:
    """Base streaming handle over one service stage of one query.

    Not thread-safe by itself: the gateway serializes each session's work
    bouts (different bouts may still run on different pool threads — the
    tracer's :meth:`~repro.obs.trace.Tracer.reenter` and the
    bout-scoped profiler sections are designed for exactly that).
    """

    def __init__(
        self,
        service: Service,
        *,
        query: Any = None,
        ordinal: int = 0,
        seed: Optional[int] = None,
        record: bool = True,
        endpoint_config: Optional[EndpointConfig] = None,
    ):
        self.service = service
        self.query = query
        self.ordinal = ordinal
        self.seed = seed
        self.record = record
        self.state = LISTENING
        self.opened_at = time.perf_counter()
        self.profiler = Profiler()
        self.chunks: List[Any] = []
        self._endpoint_config = (
            endpoint_config if endpoint_config is not None else EndpointConfig()
        )
        self._endpointer: Optional[StreamingEndpointer] = None
        self._outcome: Optional[StageOutcome] = None
        self._final_spans: Tuple[Span, ...] = ()
        self._virtual = 0.0
        self._tracer: Optional[Tracer] = None
        self._span: Optional[Span] = None
        if seed is not None:
            # Mint the service span exactly where _run_stage would: first
            # same-named child of the query's root span.  The root itself is
            # owned by the executor (run() recreates it deterministically).
            self._tracer = Tracer(seed=seed)
            trace_id = trace_id_for(seed, ordinal)
            root_id = span_id_for(trace_id, "", "query", 0)
            self._span = Span(
                trace_id=trace_id,
                span_id=span_id_for(trace_id, root_id, service.name, 0),
                parent_id=root_id,
                name=service.name,
                kind="service",
                service=service.label,
                ordinal=ordinal,
                start=self.opened_at,
            )

    # -- lifecycle ---------------------------------------------------------------

    def _require(self, action: str) -> None:
        if self.state != LISTENING:
            raise SessionError(
                f"cannot {action} a {self.state} session "
                f"(service={self.service.name!r}, ordinal={self.ordinal})",
                service=self.service.name,
            )

    def feed(self, chunk: Any) -> bool:
        """Append one input chunk; returns the endpointer's decision so far."""
        self._require("feed")
        self.chunks.append(chunk)
        return self._observe_audio(chunk)

    def partials(self) -> List[str]:
        """New incremental hypotheses since the last poll (none by default)."""
        return []

    def finish(self) -> StageOutcome:
        """Close the input stream and run (or finalize) the stage.

        Idempotent once finished; service failures are *captured* on the
        outcome (the executor classifies them), only session misuse raises.
        """
        if self.state == FINISHED:
            return self._outcome
        self._require("finish")
        if not self.chunks:
            raise SessionError(
                f"finish() on a session that was never fed "
                f"(service={self.service.name!r}, ordinal={self.ordinal})",
                service=self.service.name,
            )
        self._outcome = self._finalize()
        self._final_spans = self._outcome.spans
        self.state = FINISHED
        return self._outcome

    def cancel(self) -> str:
        """Barge-in: abandon the utterance; returns the last partial heard.

        Idempotent.  Cancelling a *finished* session is a caller bug (the
        answer already exists) and raises :class:`~repro.errors.SessionError`.
        """
        if self.state == CANCELLED:
            return self.last_partial
        self._require("cancel")
        self.state = CANCELLED
        span = self._span
        if span is not None:
            span.end = time.perf_counter()
            span.status = "error"
            span.error_code = "SESSION"
            span.attributes["cancelled"] = True
            collected = [*self._tracer.finish(), span]
            self._final_spans = tuple(sorted(collected, key=sort_key))
        return self.last_partial

    @property
    def spans(self) -> Tuple[Span, ...]:
        """Spans recorded by this session (empty until finish/cancel)."""
        return self._final_spans

    @property
    def outcome(self) -> Optional[StageOutcome]:
        return self._outcome

    @property
    def last_partial(self) -> str:
        return ""

    @property
    def endpointed(self) -> bool:
        return self._endpointer is not None and self._endpointer.endpointed

    # -- endpointing -------------------------------------------------------------

    def _observe_audio(self, chunk: Any) -> bool:
        """Run the causal endpointer over audio-bearing chunks."""
        if isinstance(chunk, Waveform):
            samples, rate = chunk.samples, chunk.sample_rate
        elif isinstance(chunk, np.ndarray):
            samples, rate = chunk, 16000
        else:
            return self.endpointed
        if self._endpointer is None:
            self._endpointer = StreamingEndpointer(
                self._endpoint_config, sample_rate=rate
            )
        return self._endpointer.push(samples)

    # -- the executor-equivalent stage bracket -------------------------------------

    @contextmanager
    def _bout(self) -> Iterator[None]:
        """One synchronous work bout under this session's trace identity."""
        if self._tracer is None:
            yield
            return
        with use_tracer(self._tracer), self._tracer.reenter(self._span):
            yield

    def _record_section(self):
        """The ``section(service.name)`` bracket recorded stages get."""
        if self.record:
            return self.profiler.section(self.service.name)
        return nullcontext()

    def _invoke(self, payload: Any) -> StageOutcome:
        """Run the stage once, replicating ``PlanExecutor._run_stage``.

        The request carries the session's ordinal (attempt/fault keys) but
        no ``TraceContext`` — like the executor's serial path, the call runs
        in-thread under the ambient tracer, so resilience attempt spans and
        profiler sections nest under the session's service span.
        """
        request = ServiceRequest(
            payload=payload,
            query=self.query,
            ordinal=self.ordinal,
            admitted_at=time.perf_counter(),
        )
        drain_virtual_seconds()
        before = self.profiler.profile.total
        result: Any = None
        error: Optional[SiriusError] = None
        with self._bout():
            try:
                with self._record_section():
                    result = self.service.invoke(request, self.profiler)
            except SiriusError as exc:
                error = exc
        virtual = drain_virtual_seconds()
        seconds = self.profiler.profile.total - before + virtual
        return self._close(result, error, seconds, virtual)

    def _close(
        self,
        result: Any,
        error: Optional[SiriusError],
        seconds: float,
        virtual: float,
    ) -> StageOutcome:
        """Close the service span the way ``_run_stage`` would, and pack up."""
        span = self._span
        spans: Tuple[Span, ...] = ()
        if span is not None:
            if virtual > 0:
                span.attributes["virtual_seconds"] = virtual
            span.end = time.perf_counter()
            if error is not None:
                span.status = "error"
                span.error_code = getattr(error, "code", "SIRIUS")
            spans = tuple(sorted([*self._tracer.finish(), span], key=sort_key))
        return StageOutcome(
            service=self.service.name,
            label=self.service.label,
            payload=result,
            error=error,
            seconds=seconds,
            virtual_seconds=virtual,
            profile=self.profiler.profile,
            spans=spans,
        )

    def _finalize(self) -> StageOutcome:
        return self._invoke(self._combine(self.chunks))

    # -- chunk assembly ----------------------------------------------------------

    def _combine(self, chunks: Sequence[Any]) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.service.name} "
                f"ordinal={self.ordinal} {self.state} "
                f"chunks={len(self.chunks)}>")


class BufferingSession(ServiceSession):
    """The default adapter: buffer everything, one batch ``invoke`` at finish.

    Because the invoke goes through the service *as wrapped* — resilience
    retries, fault injection, circuit breakers and all — a chaos run served
    through buffering sessions replays byte-identically against the batch
    executor: the deterministic fault keys ``(service, ordinal, attempt)``
    and the attempt-span structure are untouched by the session layer.
    """

    def _combine(self, chunks: Sequence[Any]) -> Any:
        if len(chunks) == 1:
            # Identity, not a rebuild: the single-chunk path must hand the
            # service the very object the batch request builder would.
            return chunks[0]
        first = chunks[0]
        if isinstance(first, Waveform):
            if not all(isinstance(chunk, Waveform) for chunk in chunks):
                raise self._mixed(chunks)
            rates = {chunk.sample_rate for chunk in chunks}
            if len(rates) > 1:
                raise SessionError(
                    f"cannot combine chunks with mixed sample rates {sorted(rates)}",
                    service=self.service.name,
                )
            return Waveform(
                np.concatenate([chunk.samples for chunk in chunks]),
                first.sample_rate,
            )
        if isinstance(first, np.ndarray):
            if not all(isinstance(chunk, np.ndarray) for chunk in chunks):
                raise self._mixed(chunks)
            return np.concatenate(
                [np.asarray(chunk, dtype=float).ravel() for chunk in chunks]
            )
        if isinstance(first, str):
            if not all(isinstance(chunk, str) for chunk in chunks):
                raise self._mixed(chunks)
            return "".join(chunks)
        raise SessionError(
            f"no combine rule for chunk type {type(first).__name__!r} "
            f"(service={self.service.name!r}); feed a single chunk instead",
            service=self.service.name,
        )

    def _mixed(self, chunks: Sequence[Any]) -> SessionError:
        kinds = sorted({type(chunk).__name__ for chunk in chunks})
        return SessionError(
            f"cannot combine mixed chunk types {kinds} "
            f"(service={self.service.name!r})",
            service=self.service.name,
        )


class AsrStreamingSession(ServiceSession):
    """Incremental recognition over a bare :class:`~repro.serving.service.AsrService`.

    **Deferred engagement.**  The first chunk only buffers; the incremental
    :class:`~repro.asr.streaming.StreamingDecoder` engages when a second
    chunk arrives or ``partials()`` is first polled (buffered audio is
    replayed into it).  A session fed one chunk and finished without
    polling therefore takes the exact batch ``decode_waveform`` path — the
    byte-identical-equivalence anchor.  The endpointer runs on *every*
    chunk regardless; it decides when to finalize, never which audio the
    decoder sees, so endpointing cannot perturb the transcript.

    Partial hypotheses are recorded as ``asr.partial`` spans (kind
    ``partial``) under the service span — the time-to-first-partial metric
    in ``repro trace-report`` is derived from the first of these.
    """

    def __init__(
        self,
        service: Service,
        decoder: Any,
        *,
        query: Any = None,
        ordinal: int = 0,
        seed: Optional[int] = None,
        record: bool = True,
        endpoint_config: Optional[EndpointConfig] = None,
    ):
        super().__init__(
            service, query=query, ordinal=ordinal, seed=seed,
            record=record, endpoint_config=endpoint_config,
        )
        self._decoder = decoder
        self._streaming: Any = None
        self._fed = 0                       # chunks already replayed/fed
        self._emitted: List[str] = []       # every distinct partial, in order
        self._last = ""

    # -- feeding -----------------------------------------------------------------

    def feed(self, chunk: Any) -> bool:
        self._require("feed")
        waveform = self._as_waveform(chunk)
        self.chunks.append(waveform)
        endpointed = self._observe_audio(waveform)
        if self._streaming is None:
            if len(self.chunks) > 1:
                self._engage()
        else:
            self._pump()
        return endpointed

    def _as_waveform(self, chunk: Any) -> Waveform:
        if isinstance(chunk, Waveform):
            return chunk
        if isinstance(chunk, np.ndarray):
            return Waveform(np.asarray(chunk, dtype=float).ravel())
        raise SessionError(
            f"ASR sessions take Waveform or sample-array chunks, "
            f"got {type(chunk).__name__!r}",
            service=self.service.name,
        )

    def _engage(self) -> None:
        """Switch to incremental decoding, replaying buffered audio."""
        from repro.asr.streaming import StreamingDecoder

        self._streaming = StreamingDecoder(self._decoder, profiler=self.profiler)
        self._pump()

    def _pump(self) -> None:
        """Feed every not-yet-decoded chunk through the streaming decoder."""
        pending = self.chunks[self._fed :]
        if not pending:
            return
        self._fed = len(self.chunks)
        drain_virtual_seconds()
        with self._bout():
            with self._record_section():
                for waveform in pending:
                    self._streaming.feed(waveform.samples)
        self._virtual += drain_virtual_seconds()

    # -- partials ----------------------------------------------------------------

    def partials(self) -> List[str]:
        """New (changed, non-empty) hypotheses since the last poll.

        The first poll engages incremental decoding; partial texts are
        monotonically appended to :attr:`partials_emitted` and each new one
        records an ``asr.partial`` span under the service span.
        """
        if self.state != LISTENING:
            return []
        if not self.chunks:
            return []
        if self._streaming is None:
            self._engage()
        drain_virtual_seconds()
        fresh: List[str] = []
        with self._bout():
            with self._record_section():
                text = self._streaming.partial()
            if text and text != self._last:
                index = len(self._emitted)
                self._last = text
                self._emitted.append(text)
                fresh.append(text)
                if self._tracer is not None:
                    with self._tracer.span(
                        "asr.partial",
                        kind=PARTIAL,
                        service=self.service.label,
                        attributes={
                            "partial_index": index,
                            "chars": len(text),
                            "frames": self._streaming.frames_seen,
                        },
                    ):
                        pass
        self._virtual += drain_virtual_seconds()
        return fresh

    @property
    def partials_emitted(self) -> Tuple[str, ...]:
        return tuple(self._emitted)

    @property
    def last_partial(self) -> str:
        return self._last

    # -- finishing ---------------------------------------------------------------

    def _finalize(self) -> StageOutcome:
        if self._streaming is None:
            # Never engaged: the batch path, byte-identical to the executor.
            return self._invoke(self._combine_audio())
        drain_virtual_seconds()
        result: Any = None
        error: Optional[SiriusError] = None
        with self._bout():
            try:
                with self._record_section():
                    result = self._streaming.finish()
            except SiriusError as exc:
                error = exc
        self._virtual += drain_virtual_seconds()
        if self._span is not None:
            self._span.attributes["chunks"] = len(self.chunks)
            if self._emitted:
                self._span.attributes["partials"] = len(self._emitted)
            if self.endpointed:
                self._span.attributes["endpointed"] = True
        # All profiled seconds belong to this stage (the session's profiler
        # records nothing else), matching _run_stage's profile-delta rule.
        seconds = self.profiler.profile.total + self._virtual
        return self._close(result, error, seconds, self._virtual)

    def _combine_audio(self) -> Waveform:
        if len(self.chunks) == 1:
            return self.chunks[0]
        rates = {chunk.sample_rate for chunk in self.chunks}
        if len(rates) > 1:
            raise SessionError(
                f"cannot combine chunks with mixed sample rates {sorted(rates)}",
                service=self.service.name,
            )
        return Waveform(
            np.concatenate([chunk.samples for chunk in self.chunks]),
            self.chunks[0].sample_rate,
        )

    def _combine(self, chunks: Sequence[Any]) -> Any:
        return self._combine_audio()
