"""Cluster-scale serving: sharded replicas, pluggable routing, autoscaling.

The single-node serving layer answers "how fast is one query"; this
package answers the paper's warehouse-scale question — what does a *fleet*
of Sirius replicas look like under load?  Four modules:

- :mod:`repro.serving.cluster.router` — pluggable load-balancing policies
  (round-robin, least-loaded, power-of-two-choices) and seeded admission
  control, every decision a pure function of ``(seed, ordinal)`` and the
  load signal;
- :mod:`repro.serving.cluster.sharding` — shard builders for the IMM image
  database and the QA search index, plus scatter/gather services with
  deterministic merges and a partial-result degradation contract;
- :mod:`repro.serving.cluster.fleet` — the live :class:`Cluster`: real
  replicated executors behind the router, router spans and queue metrics
  per query, conservation guaranteed;
- :mod:`repro.serving.cluster.autoscaler` / :mod:`~repro.serving.cluster.
  replay` — the SLO-driven scaling policy and the virtual-time open-loop
  replay driver that exercises it at model scale (millions of queries by
  extrapolation), validated against the M/M/1 closed form.

The whole layer is locked down by the reusable serving conformance suite
in ``tests/conformance/``.  See ``docs/CLUSTER.md``.
"""

from repro.serving.cluster.autoscaler import (
    HOLD,
    SCALE_DOWN,
    SCALE_UP,
    AutoscalerPolicy,
    ScaleDecision,
)
from repro.serving.cluster.fleet import Cluster, RouteDecision, build_cluster
from repro.serving.cluster.replay import (
    FleetEstimate,
    QueryOutcome,
    ReplayResult,
    extrapolate_fleet,
    replay_cluster,
)
from repro.serving.cluster.router import (
    LEAST_LOADED,
    POWER_OF_TWO,
    ROUND_ROBIN,
    AdmissionControl,
    LeastLoadedPolicy,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.serving.cluster.sharding import (
    ShardedImmService,
    ShardedQaService,
    merge_match_candidates,
    merge_ranked_answers,
    shard_documents,
    shard_image_database,
    shard_qa_engines,
    shard_service_name,
)

__all__ = [
    "AdmissionControl",
    "AutoscalerPolicy",
    "Cluster",
    "FleetEstimate",
    "HOLD",
    "LEAST_LOADED",
    "LeastLoadedPolicy",
    "POWER_OF_TWO",
    "PowerOfTwoPolicy",
    "QueryOutcome",
    "ROUND_ROBIN",
    "ReplayResult",
    "RouteDecision",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "SCALE_DOWN",
    "SCALE_UP",
    "ScaleDecision",
    "ShardedImmService",
    "ShardedQaService",
    "available_policies",
    "build_cluster",
    "extrapolate_fleet",
    "get_policy",
    "merge_match_candidates",
    "merge_ranked_answers",
    "register_policy",
    "replay_cluster",
    "shard_documents",
    "shard_image_database",
    "shard_qa_engines",
    "shard_service_name",
]
