"""SLO-driven autoscaling: deterministic replica-count decisions.

The warehouse-scale question the paper's Section 7 asks — how many
machines does an IPA service need? — is at serving time an *autoscaling*
question: watch the tail, add replicas when the SLO is threatened, reclaim
them when the fleet is over-provisioned.  This module supplies the policy
half; the replay driver (:mod:`repro.serving.cluster.replay`) feeds it a
measured p99 from the ``serve.*`` histograms once per simulated tick and
applies its decisions.

**Determinism.**  A decision is a pure function of
``(seed, tick, p99, n_replicas)``:

- scale **up** whenever the observed p99 exceeds the SLO — always, no
  randomness, because reacting late to an SLO breach is the one
  unforgivable autoscaler sin;
- scale **down** only when p99 has dropped below ``hysteresis * slo`` (the
  classic dead-band that prevents flapping at the threshold) *and* a
  seeded per-tick coin agrees — the coin models the lazy, conservative
  downscaling real autoscalers use (scale-in is cheap to defer, expensive
  to regret), while keeping every run replayable.

Decisions carry a human-readable ``reason`` so replay reports can show
*why* the fleet grew at tick 17.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Decision kinds.
SCALE_UP = "scale-up"
SCALE_DOWN = "scale-down"
HOLD = "hold"


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler evaluation: what to do and why."""

    tick: int
    action: str          #: SCALE_UP | SCALE_DOWN | HOLD
    n_replicas: int      #: replica count after applying the decision
    p99: float           #: the observed p99 the decision was based on
    reason: str

    @property
    def changed(self) -> bool:
        return self.action != HOLD


class AutoscalerPolicy:
    """Target-tail autoscaling with hysteresis and seeded lazy scale-in.

    ``slo_p99`` is the latency target in seconds.  ``scale_up_step`` /
    ``scale_down_step`` bound how many replicas one tick may add/remove
    (step scaling, not target-tracking — deliberate, so a single noisy
    tick cannot double the fleet).  ``hysteresis`` in (0, 1] sets the
    scale-in dead-band; ``down_probability`` is the seeded coin's chance
    of *actually* scaling in once the dead-band allows it.
    """

    def __init__(
        self,
        slo_p99: float,
        min_replicas: int = 1,
        max_replicas: int = 8,
        scale_up_step: int = 1,
        scale_down_step: int = 1,
        hysteresis: float = 0.8,
        down_probability: float = 0.5,
    ):
        if slo_p99 <= 0:
            raise ConfigurationError("slo_p99 must be > 0")
        if not 1 <= min_replicas <= max_replicas:
            raise ConfigurationError("need 1 <= min_replicas <= max_replicas")
        if scale_up_step < 1 or scale_down_step < 1:
            raise ConfigurationError("scale steps must be >= 1")
        if not 0.0 < hysteresis <= 1.0:
            raise ConfigurationError("hysteresis must be in (0, 1]")
        if not 0.0 <= down_probability <= 1.0:
            raise ConfigurationError("down_probability must be in [0, 1]")
        self.slo_p99 = slo_p99
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_up_step = scale_up_step
        self.scale_down_step = scale_down_step
        self.hysteresis = hysteresis
        self.down_probability = down_probability

    def decide(
        self, tick: int, p99: float, n_replicas: int, seed: int = 0
    ) -> ScaleDecision:
        """Evaluate one tick; pure in ``(seed, tick, p99, n_replicas)``."""
        if n_replicas < 1:
            raise ConfigurationError("n_replicas must be >= 1")
        if p99 > self.slo_p99:
            target = min(n_replicas + self.scale_up_step, self.max_replicas)
            if target > n_replicas:
                return ScaleDecision(
                    tick=tick, action=SCALE_UP, n_replicas=target, p99=p99,
                    reason=(
                        f"p99 {p99 * 1000:.1f}ms > SLO "
                        f"{self.slo_p99 * 1000:.1f}ms: "
                        f"{n_replicas} -> {target} replicas"
                    ),
                )
            return ScaleDecision(
                tick=tick, action=HOLD, n_replicas=n_replicas, p99=p99,
                reason=(
                    f"p99 {p99 * 1000:.1f}ms over SLO but already at "
                    f"max_replicas={self.max_replicas}"
                ),
            )
        floor = self.hysteresis * self.slo_p99
        if p99 < floor and n_replicas > self.min_replicas:
            coin = random.Random(f"{seed}:{tick}:scale")
            if coin.random() < self.down_probability:
                target = max(n_replicas - self.scale_down_step, self.min_replicas)
                return ScaleDecision(
                    tick=tick, action=SCALE_DOWN, n_replicas=target, p99=p99,
                    reason=(
                        f"p99 {p99 * 1000:.1f}ms < {self.hysteresis:.0%} of "
                        f"SLO: {n_replicas} -> {target} replicas"
                    ),
                )
            return ScaleDecision(
                tick=tick, action=HOLD, n_replicas=n_replicas, p99=p99,
                reason="under scale-in floor but lazy coin deferred",
            )
        return ScaleDecision(
            tick=tick, action=HOLD, n_replicas=n_replicas, p99=p99,
            reason="p99 within the SLO dead-band",
        )

    def __repr__(self) -> str:
        return (
            f"<AutoscalerPolicy slo_p99={self.slo_p99} "
            f"replicas=[{self.min_replicas},{self.max_replicas}]>"
        )
