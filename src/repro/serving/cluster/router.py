"""Pluggable load-balancing policies and seeded admission control.

The cluster router makes two decisions per query — *admit it?* and *which
replica?* — and both must be **pure functions of ``(seed, ordinal)`` and
the deterministic load signal**, never of wall clocks or thread timing.
That is the property the whole cluster layer leans on: with decisions
pure, the same ``(seed, arrival process)`` replays byte-identically across
serial/thread/process backends and across live vs. model-extrapolated
runs, which is what lets the conformance suite (``tests/conformance/``)
compare them at all.

Three classic policies ship in the registry:

- ``round-robin`` — ordinal modulo fleet size; ignores load entirely.
- ``least-loaded`` — global minimum queue depth, ties to the lowest
  replica index (it can never pick a strictly-worse replica than any
  alternative, the invariant the property suite checks).
- ``power-of-two`` — the power-of-two-choices rule: sample two replicas
  with a seeded per-ordinal coin and take the less loaded.  The classic
  result (Mitzenmacher) is that two choices already collapse the max-load
  gap versus random/round-robin placement; the pinned-seed property test
  measures exactly that collapse on adversarial depth streams.

Policies see only a *depth vector* — they do not know whether the depths
came from the live fleet's deterministic assignment counts
(:mod:`repro.serving.cluster.fleet`) or the replay driver's true
virtual-time queue lengths (:mod:`repro.serving.cluster.replay`).
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, Sequence

from repro.errors import ConfigurationError

#: Canonical policy names, in registry order.
ROUND_ROBIN = "round-robin"
LEAST_LOADED = "least-loaded"
POWER_OF_TWO = "power-of-two"


class RoutingPolicy(abc.ABC):
    """One cross-query load-balancing rule.

    ``choose`` must be a pure function of its arguments: no internal
    mutable state, no wall clock, no unseeded randomness.  The router
    passes the policy a snapshot of per-replica queue depths and the
    query's stream ordinal; the policy returns a replica index.
    """

    name: str = ""

    @abc.abstractmethod
    def choose(self, ordinal: int, depths: Sequence[int], seed: int = 0) -> int:
        """Pick a replica index in ``range(len(depths))`` for this query."""

    def __repr__(self) -> str:
        return f"<RoutingPolicy {self.name}>"


def _check_depths(depths: Sequence[int]) -> None:
    if not depths:
        raise ConfigurationError("routing needs at least one replica")


class RoundRobinPolicy(RoutingPolicy):
    """Cyclic placement: replica ``ordinal % n``, blind to load."""

    name = ROUND_ROBIN

    def choose(self, ordinal: int, depths: Sequence[int], seed: int = 0) -> int:  # noqa: ARG002
        _check_depths(depths)
        return ordinal % len(depths)


class LeastLoadedPolicy(RoutingPolicy):
    """Global minimum queue depth; ties break to the lowest index."""

    name = LEAST_LOADED

    def choose(self, ordinal: int, depths: Sequence[int], seed: int = 0) -> int:  # noqa: ARG002
        _check_depths(depths)
        best = 0
        for index in range(1, len(depths)):
            if depths[index] < depths[best]:
                best = index
        return best


class PowerOfTwoPolicy(RoutingPolicy):
    """Power-of-two-choices: two seeded samples, keep the less loaded.

    The per-query coin is ``random.Random(f"{seed}:{ordinal}:p2c")`` —
    string seeding hashes with sha512, so the draw is identical across
    processes and ``PYTHONHASHSEED`` values (the same construction as
    :meth:`repro.serving.faults.FaultPlan.fault_for`).  Ties (equal depth)
    break to the lower replica index for determinism.
    """

    name = POWER_OF_TWO

    def choose(self, ordinal: int, depths: Sequence[int], seed: int = 0) -> int:
        _check_depths(depths)
        n = len(depths)
        if n == 1:
            return 0
        rng = random.Random(f"{seed}:{ordinal}:p2c")
        first = rng.randrange(n)
        second = rng.randrange(n)
        candidates = sorted({first, second})
        return min(candidates, key=lambda index: (depths[index], index))


_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    ROUND_ROBIN: RoundRobinPolicy,
    LEAST_LOADED: LeastLoadedPolicy,
    POWER_OF_TWO: PowerOfTwoPolicy,
}


def available_policies() -> tuple:
    """Registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def register_policy(name: str, factory: Callable[[], RoutingPolicy]) -> None:
    """Add a custom policy to the registry (conformance suite hook)."""
    if not name:
        raise ConfigurationError("policy name must be non-empty")
    _POLICIES[name] = factory


def get_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown routing policy {name!r} "
            f"(available: {', '.join(available_policies())})"
        ) from None
    policy = factory()
    if not policy.name:
        policy.name = name
    return policy


class AdmissionControl:
    """Seeded, deterministic load shedding at the router.

    Two independent mechanisms, both pure in ``(seed, ordinal, depth)``:

    - ``max_depth`` — reject when the chosen replica's queue depth has
      already reached the bound (the classic bounded-queue admission rule);
    - ``drop_rate`` — a seeded per-ordinal coin that sheds a fixed fraction
      of traffic regardless of load (chaos-style overload rehearsal).

    ``admit`` returns ``True`` to accept.  Rejections surface as failed
    responses carrying the stable :class:`~repro.errors.AdmissionError`
    code (``ADMISSION``), never as exceptions killing the stream.
    """

    def __init__(
        self,
        max_depth: int = 0,
        drop_rate: float = 0.0,
        seed: int = 0,
    ):
        if max_depth < 0:
            raise ConfigurationError("max_depth must be >= 0 (0 disables it)")
        if not 0.0 <= drop_rate <= 1.0:
            raise ConfigurationError("drop_rate must be in [0, 1]")
        self.max_depth = max_depth
        self.drop_rate = drop_rate
        self.seed = seed

    def admit(self, ordinal: int, depth: int) -> bool:
        """Admission decision for one query, deterministically."""
        if self.max_depth and depth >= self.max_depth:
            return False
        if self.drop_rate > 0.0:
            rng = random.Random(f"{self.seed}:{ordinal}:admit")
            if rng.random() < self.drop_rate:
                return False
        return True

    def __repr__(self) -> str:
        return (f"<AdmissionControl max_depth={self.max_depth} "
                f"drop_rate={self.drop_rate} seed={self.seed}>")
