"""Open-loop traffic replay: the cluster in virtual time.

The live fleet (:mod:`repro.serving.cluster.fleet`) runs real queries and
therefore tops out at what one machine can execute.  This driver answers
the warehouse-scale question instead: it replays a seeded arrival process
(:mod:`repro.datacenter.arrivals`) against a *model* fleet in virtual
time — per-replica FIFO queues, service times drawn from a seeded sampler
(measured histogram or exponential), the same pluggable routing policies
and admission control as the live cluster, and an SLO autoscaler evaluated
on the measured p99 once per tick.  Fifty thousand virtual queries replay
in well under a second, and the per-replica load is scale-invariant, so
tail estimates extrapolate to the paper's millions-of-queries regime
(:func:`extrapolate_fleet`).

**Everything is deterministic.**  Arrivals, service draws, routing,
admission, and scaling decisions are all pure functions of the run's
seeds, so the same ``(seed, arrival process)`` replays byte-identically —
:meth:`ReplayResult.digest` hashes the full per-query outcome stream and
the conformance suite asserts digest equality across repeated runs.  The
model is also *checkable*: at ``n_replicas=1`` with Poisson arrivals and
an exponential sampler it **is** an M/M/1 queue, and
:meth:`ReplayResult.mm1_p99` gives the closed-form tail to compare
against (``repro cluster-bench`` prints both; the conformance suite
asserts the documented error bound).
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.datacenter.arrivals import ArrivalProcess
from repro.datacenter.simulation import mm1_percentile
from repro.errors import ConfigurationError
from repro.obs.metrics import percentile
from repro.obs.pricing import energy_microjoules
from repro.obs.timeseries import (
    ARRIVALS_METRIC,
    ASSIGNMENTS_METRIC,
    DEPTH_METRIC,
    E2E_METRIC,
    ENERGY_METRIC,
    QUERIES_METRIC,
    REJECTED_METRIC,
    REPLICAS_METRIC,
    RollupSnapshot,
    RollupStore,
    SCALE_ACTIONS_METRIC,
    SERVICE_METRIC,
    TTFP_METRIC,
    WAIT_METRIC,
)
from repro.platforms.spec import CMP
from repro.serving.cluster.autoscaler import AutoscalerPolicy, ScaleDecision
from repro.serving.cluster.router import AdmissionControl, RoutingPolicy, get_policy


def ttfp_fraction(seed: int, ordinal: int) -> float:
    """The modeled first-partial point of a query's service time, in [0.1, 0.4).

    The live gateway measures time-to-first-partial as a real prefix of
    service work; the virtual replay models it as a seeded per-ordinal
    hash draw — a pure function of ``(seed, ordinal)``, so the TTFP
    series replays byte-identically and the TTFP SLO has end-to-end data
    without executing audio.
    """
    payload = f"{seed}:{ordinal}:ttfp".encode()
    unit = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") / float(1 << 64)
    return 0.1 + 0.3 * unit


@dataclass(frozen=True)
class QueryOutcome:
    """One virtual query's fate — every field deterministic under the seeds."""

    ordinal: int
    arrival: float     #: absolute virtual arrival time
    admitted: bool
    replica: int
    queue_depth: int   #: true queue depth the router saw at arrival
    wait: float = 0.0       #: virtual seconds queued before service
    service: float = 0.0    #: virtual service seconds
    response: float = 0.0   #: wait + service
    #: Modeled time-to-first-partial (wait + a seeded fraction of service).
    #: Derived purely from the fields above plus the run seed, so it is
    #: deliberately not part of :meth:`key` — the digest identity predates it.
    ttfp: float = 0.0

    def key(self) -> tuple:
        return (
            self.ordinal, round(self.arrival, 9), self.admitted, self.replica,
            self.queue_depth, round(self.wait, 9), round(self.service, 9),
        )


@dataclass
class ReplayResult:
    """Aggregate statistics plus the full deterministic outcome stream."""

    policy: str
    n_queries: int
    n_admitted: int
    n_rejected: int
    horizon: float                 #: virtual end time (last completion)
    mean_service: float
    mean_rate: float               #: admitted arrivals / horizon
    utilization: float             #: busy replica-seconds / available
    p50_response: float
    p95_response: float
    p99_response: float
    p50_wait: float
    p99_wait: float
    outcomes: List[QueryOutcome] = field(default_factory=list)
    decisions: List[ScaleDecision] = field(default_factory=list)
    #: (tick index, active replica count) after each autoscaler evaluation.
    replica_timeline: List[Tuple[int, int]] = field(default_factory=list)
    #: Windowed per-tick telemetry (arrivals, rejects, waits, per-replica
    #: depth, TTFP, autoscaler series) — the fleet report's raw material.
    rollups: Optional[RollupSnapshot] = None

    def digest(self) -> str:
        """SHA-256 over the ordered outcome stream — the replay identity.

        Two runs with the same seeds must produce equal digests whatever
        machine, process, or hash seed ran them; the conformance suite
        holds the cluster layer to exactly this.
        """
        hasher = hashlib.sha256()
        for outcome in self.outcomes:
            hasher.update(repr(outcome.key()).encode())
        for decision in self.decisions:
            hasher.update(
                f"{decision.tick}:{decision.action}:{decision.n_replicas}".encode()
            )
        return hasher.hexdigest()

    def mm1_p99(self) -> float:
        """Closed-form M/M/1 p99 at this run's measured service mean and load.

        Exact only for the M/M/1 configuration (one replica, Poisson
        arrivals, exponential service); for everything else it is the
        analytic baseline the measured tail is compared against.
        """
        if not 0 < self.utilization < 1:
            raise ConfigurationError(
                "mm1_p99 needs utilization in (0, 1); the replay measured "
                f"{self.utilization:.3f}"
            )
        return mm1_percentile(self.mean_service, self.utilization, 99.0)

    def mm1_error(self) -> float:
        """Relative error of the measured p99 against the M/M/1 prediction."""
        predicted = self.mm1_p99()
        return abs(self.p99_response - predicted) / predicted if predicted else 0.0


def replay_cluster(
    process: ArrivalProcess,
    service_sampler: Callable[[], float],
    n_queries: int,
    policy: Union[str, RoutingPolicy] = "round-robin",
    n_replicas: int = 1,
    seed: int = 0,
    admission: Optional[AdmissionControl] = None,
    autoscaler: Optional[AutoscalerPolicy] = None,
    tick_seconds: float = 5.0,
    warmup_fraction: float = 0.1,
) -> ReplayResult:
    """Replay ``n_queries`` of a seeded arrival process through a model fleet.

    Each replica is a single-server FIFO queue in virtual time.  Per
    arrival, in order: the router sees every active replica's *true*
    outstanding-work depth, the policy picks a replica, admission accepts
    or sheds, and an admitted query waits for the replica's queue to drain
    before its sampled service time runs.  When an ``autoscaler`` is
    supplied, it is evaluated every ``tick_seconds`` of virtual time on
    the p99 of responses completed during that tick; scale-ups add idle
    replicas, scale-downs stop *assigning* to the highest-indexed replicas
    (in-flight work drains — connection draining, not job killing).

    Queueing percentiles discard the first ``warmup_fraction`` of admitted
    queries (transient ramp from the empty state); conservation counts
    never discard anything.

    Alongside the end-of-run aggregates, the driver emits **windowed
    rollups** (window width = ``tick_seconds``): arrivals, admission
    rejects, per-replica assignments and queue depth, wait/service/e2e
    distributions, the modeled TTFP series (:func:`ttfp_fraction`), and
    the autoscaler's action/replica-count series — all in virtual time,
    returned as :attr:`ReplayResult.rollups` for ``repro fleet-report``.
    """
    if n_queries < 1:
        raise ConfigurationError("need n_queries >= 1")
    if n_replicas < 1:
        raise ConfigurationError("need n_replicas >= 1")
    if tick_seconds <= 0:
        raise ConfigurationError("tick_seconds must be positive")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    resolved = policy if isinstance(policy, RoutingPolicy) else get_policy(policy)

    max_replicas = (
        autoscaler.max_replicas if autoscaler is not None else n_replicas
    )
    active = n_replicas
    # Per-replica FIFO state: completion times of outstanding work, and the
    # time the replica next becomes free.
    pending: List[deque] = [deque() for _ in range(max_replicas)]
    free_at = [0.0] * max_replicas

    rollups = RollupStore(window_seconds=tick_seconds)
    arrivals = process.times(n_queries, seed=seed)
    outcomes: List[QueryOutcome] = []
    decisions: List[ScaleDecision] = []
    replica_timeline: List[Tuple[int, int]] = []
    completed: List[Tuple[float, float]] = []  # (completion time, response)
    busy_time = 0.0
    replica_seconds = 0.0
    last_change = 0.0
    next_tick = tick_seconds
    tick_index = 0

    def run_ticks(now: float) -> None:
        """Evaluate every autoscaler tick that elapsed before ``now``."""
        nonlocal active, next_tick, tick_index
        nonlocal replica_seconds, last_change
        if autoscaler is None:
            return
        while next_tick <= now:
            # The tick's signal: p99 of responses *completed* during the
            # tick window.  ``completed`` is in arrival order (completions
            # are not globally monotone), so filter by time, not position.
            window_start = next_tick - tick_seconds
            window = [
                response
                for completion, response in completed
                if window_start < completion <= next_tick
            ]
            p99 = percentile(window, 99.0) if window else 0.0
            decision = autoscaler.decide(tick_index, p99, active, seed=seed)
            decisions.append(decision)
            if decision.n_replicas != active:
                replica_seconds += active * (next_tick - last_change)
                last_change = next_tick
                active = decision.n_replicas
            replica_timeline.append((tick_index, active))
            tick_start = next_tick - tick_seconds
            rollups.inc(SCALE_ACTIONS_METRIC, tick_start, action=decision.action)
            rollups.observe(REPLICAS_METRIC, tick_start, float(active))
            tick_index += 1
            next_tick += tick_seconds

    for ordinal, arrival in enumerate(arrivals):
        run_ticks(arrival)
        rollups.inc(ARRIVALS_METRIC, arrival)
        depths = []
        for index in range(active):
            queue = pending[index]
            while queue and queue[0] <= arrival:
                queue.popleft()
            depths.append(len(queue))
        replica = resolved.choose(ordinal, tuple(depths), seed=seed)
        if not 0 <= replica < active:
            raise ConfigurationError(
                f"policy {resolved.name!r} chose replica {replica} "
                f"outside the {active} active replicas"
            )
        depth = depths[replica]
        admitted = (
            admission.admit(ordinal, depth) if admission is not None else True
        )
        if not admitted:
            rollups.inc(REJECTED_METRIC, arrival)
            rollups.inc(QUERIES_METRIC, arrival, status="failed")
            outcomes.append(
                QueryOutcome(
                    ordinal=ordinal, arrival=arrival, admitted=False,
                    replica=replica, queue_depth=depth,
                )
            )
            continue
        start = max(arrival, free_at[replica])
        service = max(service_sampler(), 1e-9)
        completion = start + service
        free_at[replica] = completion
        pending[replica].append(completion)
        busy_time += service
        completed.append((completion, completion - arrival))
        wait = start - arrival
        ttfp = wait + ttfp_fraction(seed, ordinal) * service
        rollups.inc(QUERIES_METRIC, arrival, status="ok")
        rollups.inc(ASSIGNMENTS_METRIC, arrival, replica=replica)
        rollups.observe(DEPTH_METRIC, arrival, float(depth), replica=replica)
        rollups.observe(WAIT_METRIC, arrival, wait)
        rollups.observe(SERVICE_METRIC, arrival, service)
        rollups.observe(E2E_METRIC, arrival, completion - arrival)
        rollups.observe(TTFP_METRIC, arrival, ttfp)
        # Per-query energy panel: queue wait + service at full-server CMP
        # draw, through the single rounding point in repro.obs.pricing so
        # panel values match the cost ledger microjoule-for-microjoule.
        rollups.observe(
            ENERGY_METRIC, arrival,
            float(energy_microjoules(CMP, wait + service)),
        )
        outcomes.append(
            QueryOutcome(
                ordinal=ordinal, arrival=arrival, admitted=True,
                replica=replica, queue_depth=depth,
                wait=wait, service=service,
                response=completion - arrival,
                ttfp=ttfp,
            )
        )

    horizon = max(
        [outcome.arrival for outcome in outcomes]
        + [completion for completion, _ in completed]
        + [1e-9]
    )
    replica_seconds += active * (horizon - last_change)
    if not replica_timeline:
        # No autoscaler ticks fired: the fleet held its initial size.
        replica_timeline.append((0, active))
    admitted_outcomes = [outcome for outcome in outcomes if outcome.admitted]
    cutoff = int(len(admitted_outcomes) * warmup_fraction)
    kept = admitted_outcomes[cutoff:]
    responses = [outcome.response for outcome in kept]
    waits = [outcome.wait for outcome in kept]
    services = [outcome.service for outcome in admitted_outcomes]
    return ReplayResult(
        policy=resolved.name,
        n_queries=n_queries,
        n_admitted=len(admitted_outcomes),
        n_rejected=n_queries - len(admitted_outcomes),
        horizon=horizon,
        mean_service=(
            math.fsum(services) / len(services) if services else 0.0
        ),
        mean_rate=len(admitted_outcomes) / horizon if horizon > 0 else 0.0,
        utilization=(
            min(busy_time / replica_seconds, 1.0) if replica_seconds > 0 else 0.0
        ),
        p50_response=percentile(responses, 50.0),
        p95_response=percentile(responses, 95.0),
        p99_response=percentile(responses, 99.0),
        p50_wait=percentile(waits, 50.0),
        p99_wait=percentile(waits, 99.0),
        outcomes=outcomes,
        decisions=decisions,
        replica_timeline=replica_timeline,
        rollups=rollups.snapshot(),
    )


@dataclass(frozen=True)
class FleetEstimate:
    """A model-extrapolated fleet size for a target query volume."""

    target_queries: int      #: total queries over the planning window
    window_seconds: float    #: planning window length
    target_rate: float       #: implied queries/second
    per_replica_rate: float  #: sustainable admitted rate per replica
    n_replicas: int          #: replicas needed at the measured load point
    projected_p99: float     #: per-replica load is preserved, so p99 carries


def extrapolate_fleet(
    result: ReplayResult,
    target_queries: int = 1_000_000,
    window_seconds: float = 3600.0,
) -> FleetEstimate:
    """Size a fleet for ``target_queries`` over ``window_seconds``.

    Scale-invariance does the work: each replica in the measured replay
    sustained ``mean_rate / active_replicas`` admitted queries per second
    at the measured utilization and tail.  Holding the *per-replica* load
    fixed, serving the target volume needs proportionally more replicas —
    and preserves the measured p99, because a FIFO replica's response
    distribution depends only on its own arrival/service processes.  This
    is the model-extrapolation step: a 50 k-query replay prices a
    million-query hour without simulating it.
    """
    if target_queries < 1 or window_seconds <= 0:
        raise ConfigurationError("need target_queries >= 1 and window > 0")
    if result.n_admitted == 0 or result.horizon <= 0:
        raise ConfigurationError("cannot extrapolate from an empty replay")
    counts = [count for _, count in result.replica_timeline] or [1]
    mean_active = math.fsum(counts) / len(counts)
    per_replica = result.mean_rate / max(mean_active, 1.0)
    target_rate = target_queries / window_seconds
    return FleetEstimate(
        target_queries=target_queries,
        window_seconds=window_seconds,
        target_rate=target_rate,
        per_replica_rate=per_replica,
        n_replicas=max(int(math.ceil(target_rate / per_replica)), 1),
        projected_p99=result.p99_response,
    )
