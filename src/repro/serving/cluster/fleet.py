"""The live cluster: replicated executors behind a deterministic router.

A :class:`Cluster` is a fleet of fully independent
:class:`~repro.serving.executor.PlanExecutor` replicas (each with its own
services — typically sharded QA/IMM from
:mod:`repro.serving.cluster.sharding`) fronted by one router.  Queries fan
out *across* replicas (cross-query balancing) while each query fans out
*within* its replica's sharded services (single-query scatter/gather) —
the two axes of the paper's Section 6 architecture, composed.

**Determinism before realism.**  The router's load signal is not measured
queue length (which would depend on thread timing and break replay): it is
a **windowed assignment count** — replica *i*'s depth is how many of the
last ``window`` admitted queries were placed on it.  That signal is a pure
fold over ordinals, so the full placement table for a stream is computed
up front by :meth:`Cluster.plan_routes` and every decision is a pure
function of ``(seed, ordinal)``.  Consequences the conformance suite
checks: identical placements, outcome streams, and timing-stripped span
forests across serial/thread/process backends, chaos included.  The model
replay driver (:mod:`repro.serving.cluster.replay`) is the complementary
mode with *true* queue depths in virtual time.

Every placement is materialized as a
:class:`~repro.serving.executor.RouterTicket`, so executors emit a
``router`` span per query (queue wait attributed to stage ``ROUTER``, not
to any service) and the critical-path analyzer prices the router like any
other stage.  Rejected queries become *failed* responses with the stable
``ADMISSION`` code and a one-span trace of their own — conservation holds:
exactly one response per query, admitted or not.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.query import IPAQuery, QueryType, SiriusResponse
from repro.errors import AdmissionError, ConfigurationError
from repro.obs.metrics import (
    MetricsRegistry,
    QUEUE_DEPTH_HISTOGRAM,
    ROUTER_REJECTED_COUNTER,
    ROUTER_WAIT_HISTOGRAM,
    SHARD_FANOUT_HISTOGRAM,
    record_responses,
    replica_counter_name,
)
from repro.obs.timeseries import (
    ARRIVALS_METRIC,
    REJECTED_METRIC,
    RollupStore,
    rollups_from_spans,
)
from repro.obs.trace import ROUTER, Tracer, collect_spans
from repro.serving.backends import get_backend
from repro.serving.cluster.router import (
    AdmissionControl,
    POWER_OF_TWO,
    RoutingPolicy,
    get_policy,
)
from repro.serving.executor import DEGRADE, PlanExecutor, RouterTicket


@dataclass(frozen=True)
class RouteDecision:
    """One query's routing outcome, pure in ``(seed, ordinal)``."""

    ordinal: int
    admitted: bool
    replica: int       #: chosen replica index (also set for rejected queries)
    queue_depth: int   #: the chosen replica's windowed depth the router saw
    policy: str

    def key(self) -> tuple:
        """The replay-comparable projection (used by conformance tests)."""
        return (self.ordinal, self.admitted, self.replica, self.queue_depth)


class Cluster:
    """A routed fleet of plan-executor replicas.

    ``executors`` are the replicas (index = replica id).  ``policy`` may be
    a registry name or a :class:`~repro.serving.cluster.router.
    RoutingPolicy` instance; ``admission`` is optional seeded load
    shedding.  ``window`` sizes the assignment-count load signal (default:
    four outstanding queries per replica).  ``metrics`` is recorded
    parent-side after each stream — e2e/service histograms via
    :func:`~repro.obs.metrics.record_responses` plus the router's own
    queue-depth, router-wait, shard-fanout, and rejection series — so the
    numbers are complete even when replicas ran in forked workers.
    ``rollups`` is an optional :class:`~repro.obs.timeseries.RollupStore`
    fed the same way: router arrivals/rejects from the placement table
    plus the seed-deterministic span projection
    (:func:`~repro.obs.timeseries.rollups_from_spans`, ordinal clock), so
    a live chaos run yields the same windowed telemetry on any backend.
    """

    def __init__(
        self,
        executors: Sequence[PlanExecutor],
        policy: Union[str, RoutingPolicy] = POWER_OF_TWO,
        seed: int = 0,
        admission: Optional[AdmissionControl] = None,
        metrics: Optional[MetricsRegistry] = None,
        window: Optional[int] = None,
        rollups: Optional[RollupStore] = None,
    ):
        if not executors:
            raise ConfigurationError("a cluster needs >= 1 replica executor")
        self.executors: List[PlanExecutor] = list(executors)
        self.policy = policy if isinstance(policy, RoutingPolicy) else get_policy(policy)
        self.seed = seed
        self.admission = admission
        self.metrics = metrics
        self.rollups = rollups
        self.window = window if window is not None else 4 * len(self.executors)
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")

    @property
    def n_replicas(self) -> int:
        return len(self.executors)

    def warmup(self) -> None:
        for executor in self.executors:
            executor.warmup()

    # -- routing -----------------------------------------------------------------

    def plan_routes(self, n_queries: int) -> List[RouteDecision]:
        """The full placement table for a stream, computed up front.

        A pure fold: depths start at zero, each admitted query increments
        its replica's count, and assignments older than ``window`` age
        out.  No wall clock, no shared mutable state during execution —
        the table is identical on every backend and every rerun.
        """
        depths = [0] * self.n_replicas
        recent: deque = deque()
        decisions: List[RouteDecision] = []
        for ordinal in range(n_queries):
            replica = self.policy.choose(ordinal, tuple(depths), seed=self.seed)
            if not 0 <= replica < self.n_replicas:
                raise ConfigurationError(
                    f"policy {self.policy.name!r} chose replica {replica} "
                    f"outside fleet of {self.n_replicas}"
                )
            depth = depths[replica]
            admitted = (
                self.admission.admit(ordinal, depth)
                if self.admission is not None
                else True
            )
            decisions.append(
                RouteDecision(
                    ordinal=ordinal,
                    admitted=admitted,
                    replica=replica,
                    queue_depth=depth,
                    policy=self.policy.name,
                )
            )
            if admitted:
                depths[replica] += 1
                recent.append(replica)
                if len(recent) > self.window:
                    depths[recent.popleft()] -= 1
        return decisions

    # -- execution ---------------------------------------------------------------

    def run_all(
        self,
        queries: Sequence[IPAQuery],
        backend: str = "serial",
        workers: Optional[int] = None,
        parallel_branches: bool = False,
    ) -> List[SiriusResponse]:
        """Serve a query stream through the routed fleet.

        Returns exactly one response per query, in stream order (the
        conservation property).  Fatal per-query failures degrade (the
        stream never aborts); rejected queries come back failed with the
        ``ADMISSION`` code.  ``backend`` fans whole queries out exactly as
        :meth:`PlanExecutor.run_all` does — the placement table is already
        fixed, so the backend only affects wall time, never outcomes.
        """
        queries = list(queries)
        decisions = self.plan_routes(len(queries))
        enqueued_at = time.perf_counter()

        def run_one(item):
            ordinal, query = item
            decision = decisions[ordinal]
            if not decision.admitted:
                return self._rejected_response(query, decision)
            ticket = RouterTicket(
                policy=decision.policy,
                replica=decision.replica,
                n_replicas=self.n_replicas,
                queue_depth=decision.queue_depth,
                enqueued_at=enqueued_at,
            )
            return self.executors[decision.replica].run(
                query,
                ordinal=ordinal,
                on_error=DEGRADE,
                parallel_branches=parallel_branches,
                router_ticket=ticket,
            )

        items = list(enumerate(queries))
        resolved = get_backend(backend)
        if resolved.name == "serial":
            responses = [run_one(item) for item in items]
        else:
            responses = resolved.map(run_one, items, workers=workers)
        if self.metrics is not None:
            self._record_metrics(decisions, responses)
        if self.rollups is not None:
            self._record_rollups(decisions, responses)
        return responses

    def _rejected_response(
        self, query: IPAQuery, decision: RouteDecision
    ) -> SiriusResponse:
        """A failed response (plus a one-span trace) for a shed query."""
        error = AdmissionError(
            f"query #{decision.ordinal} rejected at the router "
            f"(replica {decision.replica} depth {decision.queue_depth})",
            service="router",
        )
        spans: tuple = ()
        trace_seed = self.executors[decision.replica].trace_seed
        if trace_seed is not None:
            tracer = Tracer(seed=trace_seed)
            root = tracer.begin_trace(decision.ordinal)
            span = tracer.begin_span(
                "router",
                kind=ROUTER,
                service="ROUTER",
                attributes={
                    "policy": decision.policy,
                    "replica": decision.replica,
                    "n_replicas": self.n_replicas,
                    "queue_depth": decision.queue_depth,
                },
            )
            tracer.end_span(span, status="error", error_code=error.code)
            root.attributes["degraded"] = True
            root.attributes["failed"] = True
            tracer.end_span(root, status="error", error_code=error.code)
            spans = tracer.finish()
        query_type = (
            QueryType.VOICE_IMAGE_QUERY
            if query.image is not None
            else QueryType.VOICE_COMMAND
        )
        return SiriusResponse(
            query_type=query_type,
            transcript="",
            degraded=True,
            failures={"ROUTER": error.code},
            spans=spans,
        )

    def _record_metrics(
        self,
        decisions: Sequence[RouteDecision],
        responses: Sequence[SiriusResponse],
    ) -> None:
        """Parent-side metrics: complete whichever backend ran the work."""
        registry = self.metrics
        record_responses(registry, responses)
        depth_histogram = registry.histogram(QUEUE_DEPTH_HISTOGRAM)
        placements: Dict[int, int] = {}
        rejected = 0
        for decision in decisions:
            depth_histogram.observe(float(decision.queue_depth))
            if not decision.admitted:
                rejected += 1
            placements[decision.replica] = placements.get(decision.replica, 0) + 1
        if rejected:
            registry.counter(ROUTER_REJECTED_COUNTER).inc(rejected)
        for replica in sorted(placements):
            registry.counter(replica_counter_name(replica)).inc(placements[replica])
        router_wait = registry.histogram(ROUTER_WAIT_HISTOGRAM)
        fanout = registry.histogram(SHARD_FANOUT_HISTOGRAM)
        for response in responses:
            for span in getattr(response, "spans", ()) or ():
                if span.kind == ROUTER and span.wait > 0:
                    router_wait.observe(span.wait)
                width = span.attributes.get("shard.fanout")
                if width is not None:
                    fanout.observe(float(width))

    def _record_rollups(
        self,
        decisions: Sequence[RouteDecision],
        responses: Sequence[SiriusResponse],
    ) -> None:
        """Windowed telemetry on the ordinal clock, deterministic by design.

        Router arrivals/rejects come from the placement table; everything
        else (per-replica assignments and depths, stage costs, errors,
        fan-out, breaker trips) is projected from the responses' span
        forests, which read only seed-deterministic span fields — so the
        same chaos stream rolls up byte-identically on every backend.
        """
        store = self.rollups
        for decision in decisions:
            t = float(decision.ordinal)
            store.inc(ARRIVALS_METRIC, t)
            if not decision.admitted:
                store.inc(REJECTED_METRIC, t)
        spans = collect_spans(responses)
        if spans:
            store.merge(
                rollups_from_spans(
                    spans,
                    window=store.window_seconds,
                    max_samples=store.max_samples,
                    reservoir_seed=store.reservoir_seed,
                )
            )


def build_cluster(
    pipeline,
    n_replicas: int = 2,
    n_shards: int = 2,
    policy: Union[str, RoutingPolicy] = POWER_OF_TWO,
    seed: int = 0,
    admission: Optional[AdmissionControl] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace_seed: Optional[int] = None,
    imm_top_k: int = 3,
    fault_plan=None,
    rollups: Optional[RollupStore] = None,
) -> Cluster:
    """Assemble a sharded fleet from one built pipeline's components.

    Every replica gets its own :class:`PlanExecutor` over **sharded** QA
    and IMM services (the image database and the websearch index are
    partitioned ``n_shards`` ways; shard state is shared read-only across
    replicas, as a real fleet shares storage).  ASR and classification
    replicate whole — they carry no shardable corpus.  ``fault_plan``
    (e.g. :func:`~repro.serving.faults.default_chaos_plan`) wraps every
    replica's services in deterministic fault injectors keyed by ordinal,
    so chaos replays identically across replicas and backends; rules keyed
    by per-shard names (``qa.shard0``, ``imm.shard1``, ...) reach the
    scatter legs inside the sharded services, which is how the conformance
    suite rehearses partial shard failure.
    """
    from repro.serving.cluster.sharding import (
        ShardedImmService,
        ShardedQaService,
        shard_image_database,
        shard_qa_engines,
    )
    from repro.serving.faults import FaultInjector
    from repro.serving.service import (
        ASR,
        CLASSIFY,
        IMM,
        QA,
        AsrService,
        ClassifierService,
    )

    if n_replicas < 1:
        raise ConfigurationError("need n_replicas >= 1")
    qa_shards = shard_qa_engines(pipeline.qa_engine, n_shards)
    imm_shards = shard_image_database(pipeline.image_database, n_shards)
    executors = []
    for _ in range(n_replicas):
        services = {
            ASR: AsrService(pipeline.decoder),
            CLASSIFY: ClassifierService(pipeline.classifier),
            QA: ShardedQaService(qa_shards, fault_plan=fault_plan),
            IMM: ShardedImmService(imm_shards, top_k=imm_top_k, fault_plan=fault_plan),
        }
        if fault_plan is not None:
            services = {
                name: FaultInjector(service, fault_plan)
                for name, service in services.items()
            }
        executors.append(PlanExecutor(services, trace_seed=trace_seed))
    return Cluster(
        executors,
        policy=policy,
        seed=seed,
        admission=admission,
        metrics=metrics,
        rollups=rollups,
    )
