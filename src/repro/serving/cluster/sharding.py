"""Shard-aware placement: scatter/gather over partitioned IMM and QA state.

The paper's warehouse-scale services do not fit one node: the image
database and the web-search inverted index are *partitioned* across
replicas, and a single query fans out to every shard, merging partial
results on the way back (Section 6's scale-out architecture).  This module
supplies both halves:

- **shard builders** — :func:`shard_image_database` partitions a
  registered :class:`~repro.imm.database.ImageDatabase` scene-by-scene
  (feature lists are moved, never re-extracted), and
  :func:`shard_documents` partitions a websearch corpus so each shard gets
  its own :class:`~repro.websearch.engine.SearchEngine`;
- **sharded services** — :class:`ShardedQaService` /
  :class:`ShardedImmService` keep the plain ``qa`` / ``imm`` service
  names and labels, so query plans, chaos plans, and resilience policies
  apply unchanged; inside, one ``invoke`` scatters to every shard and
  gathers with a **deterministic merge** (descending score/votes, ties by
  text/name — replay-stable under any shard interleaving).

**Degradation contract.**  A shard failure is partial by design: the
gather merges whatever succeeded and annotates the span with
``shard.failed`` (observable degradation, answer still served).  Only
when *every* shard fails does the service raise a
:class:`~repro.errors.ServiceError`, handing the executor its usual
degradation rules (QA → fallback answer, IMM → VIQ-served-as-VQ).  Shard
faults can be injected deterministically through an optional
:class:`~repro.serving.faults.FaultPlan` keyed by per-shard service names
(``qa.shard0``, ``imm.shard1``, ...), the hook the conformance suite uses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError, SiriusError
from repro.imm.database import ImageDatabase, MatchResult
from repro.obs.context import annotate
from repro.profiling import Profiler
from repro.qa.engine import QAEngine, QAResult
from repro.qa.filters import FilterStats
from repro.qa.scoring import ScoredAnswer
from repro.serving.faults import LATENCY, FaultPlan, charge_virtual_seconds
from repro.serving.service import IMM, QA, Service, ServiceRequest
from repro.websearch.engine import SearchEngine


# -- shard builders ----------------------------------------------------------------


def _check_n_shards(n_shards: int) -> None:
    if n_shards < 1:
        raise ConfigurationError("need n_shards >= 1")


def shard_image_database(
    database: ImageDatabase, n_shards: int
) -> List[ImageDatabase]:
    """Partition a registered image database round-robin by image id.

    Features are moved by reference (registration already paid the SURF
    extraction); each shard is a fully independent database with its own
    ANN matcher over its own descriptor pool.  Shards beyond the image
    count come back empty — their matcher raises on use, which the sharded
    service treats as a failed shard (the *empty shard* edge case).
    """
    _check_n_shards(n_shards)
    shards = [
        ImageDatabase(
            surf=database.surf,
            ratio=database.ratio,
            max_checks=database.max_checks,
        )
        for _ in range(n_shards)
    ]
    for image_id, name in enumerate(database._names):
        shard = shards[image_id % n_shards]
        features = database._features[image_id]
        local_id = len(shard._names)
        shard._names.append(name)
        shard._features.append(features)
        shard._owner_of_row.extend([local_id] * len(features))
        shard._keypoint_of_row.extend(range(len(features)))
    return shards


def shard_documents(documents: Sequence, n_shards: int) -> List[List]:
    """Round-robin partition of a document sequence (order-preserving)."""
    _check_n_shards(n_shards)
    shards: List[List] = [[] for _ in range(n_shards)]
    for position, document in enumerate(documents):
        shards[position % n_shards].append(document)
    return shards


def shard_qa_engines(engine: QAEngine, n_shards: int) -> List[QAEngine]:
    """Per-shard QA engines over a partition of the base engine's corpus.

    Each shard indexes its own document subset (a genuinely partitioned
    inverted index); the CRF tagger and filter configuration are shared —
    they are read-only models, and rebuilding one per shard would charge
    setup cost the scatter path never pays in a real fleet.
    """
    _check_n_shards(n_shards)
    subsets = shard_documents(list(engine.search_engine.corpus), n_shards)
    return [
        QAEngine(
            search_engine=SearchEngine(subset),
            tagger=engine.tagger,
            documents_per_query=engine.documents_per_query,
        )
        for subset in subsets
    ]


# -- deterministic merges ----------------------------------------------------------


def merge_ranked_answers(
    ranked_lists: Sequence[Sequence[ScoredAnswer]],
) -> List[ScoredAnswer]:
    """Gather-side merge of per-shard QA rankings, deterministically.

    Duplicate answers (same text, found on several shards) keep their best
    ``(score, support)`` witness; the merged order is descending score with
    text as the tie-break, so the result is a pure function of the
    *multiset* of shard answers — independent of shard order or
    interleaving.
    """
    best: dict = {}
    for ranked in ranked_lists:
        for answer in ranked:
            held = best.get(answer.text)
            if held is None or (answer.score, answer.support) > (
                held.score, held.support
            ):
                best[answer.text] = answer
    return sorted(best.values(), key=lambda a: (-a.score, a.text))


def merge_match_candidates(
    candidates: Sequence[MatchResult],
) -> List[MatchResult]:
    """Gather-side merge of per-shard IMM top-k lists, deterministically.

    Duplicate image names (a scene registered on several shards) keep
    their highest vote count; order is descending votes, then name.
    """
    best: dict = {}
    for candidate in candidates:
        held = best.get(candidate.image_name)
        if held is None or candidate.votes > held.votes:
            best[candidate.image_name] = candidate
    return sorted(best.values(), key=lambda m: (-m.votes, m.image_name))


# -- sharded services --------------------------------------------------------------


def shard_service_name(base: str, index: int) -> str:
    """The per-shard fault-plan key, e.g. ``qa.shard0``."""
    return f"{base}.shard{index}"


class _ShardedService(Service):
    """Scatter/gather plumbing shared by the QA and IMM sharded services."""

    #: Optional per-shard fault plan (keys: ``shard_service_name(name, i)``).
    fault_plan: Optional[FaultPlan] = None

    def _n_shards(self) -> int:
        raise NotImplementedError

    def _shard_fault(self, index: int, request: ServiceRequest):
        """The injected fault (if any) for one shard of this call.

        ``latency`` rules charge the virtual ledger and let the shard
        proceed; every other kind fails the shard (counted toward the
        partial-degradation contract).  Returns ``(failed, code)``.
        """
        if self.fault_plan is None:
            return False, ""
        rule = self.fault_plan.fault_for(
            shard_service_name(self.name, index), request.ordinal, request.attempt
        )
        if rule is None:
            return False, ""
        if rule.kind == LATENCY:
            charge_virtual_seconds(rule.seconds)
            return False, ""
        return True, rule.code or "INJECTED"

    def _annotate_gather(self, n_failed: int, codes: Sequence[str]) -> None:
        annotate("shard.fanout", self._n_shards())
        if n_failed:
            annotate("shard.failed", n_failed)
            annotate("shard.codes", ",".join(sorted(codes)))


class ShardedQaService(_ShardedService):
    """QA scatter/gather over partitioned search indexes.

    Keeps the plain ``qa`` name/label so plans, chaos rules, and
    resilience policies written for the single-node service apply
    verbatim.  Shards run serially inside one ``invoke`` (the scatter cost
    — repeated question analysis per shard — is the fan-out "AI tax" the
    router span and shard annotations make measurable).
    """

    name = QA
    label = "QA"

    def __init__(
        self,
        engines: Sequence[QAEngine],
        fault_plan: Optional[FaultPlan] = None,
    ):
        if not engines:
            raise ConfigurationError("ShardedQaService needs >= 1 shard engine")
        self.engines: Tuple[QAEngine, ...] = tuple(engines)
        self.fault_plan = fault_plan

    def _n_shards(self) -> int:
        return len(self.engines)

    def invoke(self, request: ServiceRequest, profiler: Profiler) -> QAResult:
        question = request.payload or "?"
        gathered: List[QAResult] = []
        codes: List[str] = []
        for index, engine in enumerate(self.engines):
            failed, code = self._shard_fault(index, request)
            if failed:
                codes.append(code)
                continue
            try:
                gathered.append(engine.answer(question, profiler=profiler))
            except SiriusError as exc:
                codes.append(exc.code)
        self._annotate_gather(len(codes), codes)
        if not gathered:
            raise ServiceError(
                f"all {len(self.engines)} qa shards failed "
                f"(codes: {', '.join(sorted(codes))})",
                service=self.name,
            )
        ranked = merge_ranked_answers([result.ranked for result in gathered])
        stats = FilterStats()
        for result in gathered:
            stats.merge(result.stats)
        return QAResult(
            question=question,
            answer=ranked[0] if ranked else None,
            ranked=ranked,
            stats=stats,
            profile=profiler.profile,
            analyzed=gathered[0].analyzed,
        )


class ShardedImmService(_ShardedService):
    """IMM scatter/gather over a partitioned image database.

    Each shard extracts query features and votes locally
    (:meth:`~repro.imm.database.ImageDatabase.top_matches`); the gather
    merges candidate lists deterministically and serves the winner.  An
    *empty* shard (no registered scenes) fails its scatter leg — the
    partial-degradation contract absorbs it as long as any shard holds
    data.
    """

    name = IMM
    label = "IMM"

    def __init__(
        self,
        shards: Sequence[ImageDatabase],
        top_k: int = 3,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if not shards:
            raise ConfigurationError("ShardedImmService needs >= 1 shard")
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        self.shards: Tuple[ImageDatabase, ...] = tuple(shards)
        self.top_k = top_k
        self.fault_plan = fault_plan

    def _n_shards(self) -> int:
        return len(self.shards)

    def warmup(self) -> None:
        for shard in self.shards:
            if shard.n_images:
                shard._ensure_matcher()

    def invoke(self, request: ServiceRequest, profiler: Profiler) -> MatchResult:
        candidates: List[MatchResult] = []
        codes: List[str] = []
        total_matches = 0
        n_keypoints = 0
        n_ok = 0
        for index, shard in enumerate(self.shards):
            failed, code = self._shard_fault(index, request)
            if failed:
                codes.append(code)
                continue
            try:
                top = shard.top_matches(
                    request.payload, k=self.top_k, profiler=profiler
                )
            except SiriusError as exc:
                codes.append(exc.code)
                continue
            n_ok += 1
            if top:
                total_matches += top[0].total_matches
                n_keypoints = max(n_keypoints, top[0].n_query_keypoints)
            candidates.extend(top)
        self._annotate_gather(len(codes), codes)
        if n_ok == 0:
            raise ServiceError(
                f"all {len(self.shards)} imm shards failed "
                f"(codes: {', '.join(sorted(codes))})",
                service=self.name,
            )
        merged = merge_match_candidates(candidates)
        if not merged:
            return MatchResult("", 0, 0, n_keypoints)
        winner = merged[0]
        return MatchResult(
            image_name=winner.image_name,
            votes=winner.votes,
            total_matches=total_matches,
            n_query_keypoints=max(n_keypoints, winner.n_query_keypoints),
        )
