"""The asyncio front door: many slow-arriving voice sessions, one executor.

The paper's load model is a *stream* of independent users talking to the
datacenter; audio for one query arrives over hundreds of milliseconds
while other queries are mid-utterance.  The gateway multiplexes those
sessions over one event loop:

- each arriving query opens an ASR :class:`~repro.serving.sessions.
  ServiceSession` with a **deterministic ordinal** assigned at open, so
  resilience jitter and injected faults replay byte-identically however
  the audio interleaves;
- ``feed`` bouts (decoding work, partial extraction) run on a thread pool
  via ``run_in_executor`` — the event loop itself never blocks, which is
  the whole point of an async front door (and what statcheck's SC801
  async-hygiene rule checks);
- the moment the VAD endpointer closes an utterance, the gateway fires
  the downstream plan stages (classify → QA/IMM) as a background task
  while other sessions' audio is still arriving; ``finish()`` merely
  awaits that task;
- ``cancel()`` is barge-in: the utterance is abandoned, the session's
  spans close with a ``SESSION`` error code, and downstream never runs.

Per-session work bouts are serialized by an ``asyncio.Lock`` (sessions are
not thread-safe; *different* sessions overlap freely on the pool), and
time-to-first-partial is observed into the executor's metrics registry at
the first non-empty partial — the TTFP column next to end-to-end latency
in ``repro trace-report``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.asr.audio import Waveform
from repro.errors import ConfigurationError, SessionError
from repro.obs.metrics import TTFP_HISTOGRAM, record_response
from repro.obs.timeseries import QUERIES_METRIC, TTFP_METRIC
from repro.serving.executor import DEGRADE, PlanExecutor, _check_on_error
from repro.serving.plan import QueryPlan
from repro.serving.service import ASR

#: Gateway-session states (the underlying service session has its own).
LISTENING = "listening"      #: audio still welcome
FINALIZING = "finalizing"    #: endpoint fired; downstream running
DONE = "done"                #: response available
CANCELLED = "cancelled"      #: barge-in


class GatewaySession:
    """One user's utterance in flight through the gateway.

    All methods must be awaited on the gateway's event loop; the session's
    blocking work runs on the gateway pool.  Audio fed after finalization
    started is *dropped* (counted in :attr:`late_chunks`) — the endpointer
    already closed the utterance, and late audio must not perturb the
    deterministic transcript.
    """

    def __init__(self, gateway: "StreamingGateway", session, query, ordinal: int):
        self.gateway = gateway
        self.session = session
        self.query = query
        self.ordinal = ordinal
        self.opened_at = session.opened_at
        self.partials: List[str] = []
        self.ttfp: Optional[float] = None
        self.response: Any = None
        self.late_chunks = 0
        self._lock = asyncio.Lock()
        self._task: Optional[asyncio.Task] = None
        self._cancelled = False

    @property
    def state(self) -> str:
        if self._cancelled:
            return CANCELLED
        if self.response is not None:
            return DONE
        if self._task is not None:
            return FINALIZING
        return LISTENING

    async def feed(self, chunk: Any) -> bool:
        """Deliver one audio chunk; returns True once the utterance ended."""
        async with self._lock:
            if self._task is not None or self._cancelled:
                self.late_chunks += 1
                return True
            endpointed = await self.gateway._call(self.session.feed, chunk)
            if self.gateway.poll_on_feed:
                await self._poll_locked()
        if endpointed and self.gateway.auto_finalize:
            self._launch()
        return endpointed

    async def poll(self) -> List[str]:
        """Explicitly poll for new partial hypotheses."""
        async with self._lock:
            if self._task is not None or self._cancelled:
                return []
            return await self._poll_locked()

    async def _poll_locked(self) -> List[str]:
        fresh = await self.gateway._call(self.session.partials)
        if fresh:
            if not self.partials and self.ttfp is None:
                self.ttfp = time.perf_counter() - self.opened_at
                self.gateway._observe_ttfp(self.ttfp, self.ordinal)
            self.partials.extend(fresh)
        return fresh

    async def finish(self):
        """Await the full :class:`~repro.core.query.SiriusResponse`.

        Starts finalization if the endpointer never fired (stream simply
        ended).  Raises :class:`~repro.errors.SessionError` after barge-in.
        """
        if self._cancelled:
            raise SessionError(
                f"session ordinal={self.ordinal} was cancelled (barge-in)",
                service=ASR,
            )
        return await self._launch()

    async def cancel(self) -> Optional[str]:
        """Barge-in: abandon the utterance.

        Returns the last partial heard (what the user got to say), or
        ``None`` when it is already too late — the endpoint fired and the
        answer is being (or has been) computed.  Idempotent.
        """
        if self._cancelled:
            return self.session.last_partial
        if self._task is not None:
            return None
        self._cancelled = True
        async with self._lock:
            return await self.gateway._call(self.session.cancel)

    def _launch(self) -> "asyncio.Task":
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._finalize())
        return self._task

    async def _finalize(self):
        async with self._lock:
            outcome = await self.gateway._call(self.session.finish)
            response = await self.gateway._call(self._downstream, outcome)
        self.response = response
        self.gateway._record(response, self.ordinal)
        return response

    def _downstream(self, outcome):
        """Blocking: classify → QA/IMM off the finished ASR stage."""
        return self.gateway.executor.run(
            self.query,
            ordinal=self.ordinal,
            plan=self.gateway.plan,
            on_error=self.gateway.on_error,
            precomputed={self.session.service.name: outcome},
            wall_start=self.opened_at,
        )

    def __repr__(self) -> str:
        return (f"<GatewaySession ordinal={self.ordinal} {self.state} "
                f"partials={len(self.partials)}>")


class StreamingGateway:
    """Multiplexes concurrent streaming sessions onto a :class:`PlanExecutor`.

    ``poll_on_feed`` controls whether every ``feed`` also polls partials
    (engaging incremental decoding); disable it to keep single-chunk
    sessions on the byte-identical batch path.  ``auto_finalize`` fires
    downstream stages the moment the endpointer closes an utterance.
    """

    def __init__(
        self,
        executor: PlanExecutor,
        *,
        plan: Optional[QueryPlan] = None,
        max_workers: int = 8,
        on_error: str = DEGRADE,
        poll_on_feed: bool = True,
        auto_finalize: bool = True,
        endpoint_config: Any = None,
        rollups: Any = None,
    ):
        _check_on_error(on_error)
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if ASR not in executor.services:
            raise ConfigurationError(
                "streaming gateway needs an 'asr' service in the executor"
            )
        self.executor = executor
        self.plan = plan if plan is not None else executor.plan
        self.on_error = on_error
        self.poll_on_feed = poll_on_feed
        self.auto_finalize = auto_finalize
        self.endpoint_config = endpoint_config
        #: Optional :class:`~repro.obs.timeseries.RollupStore` — windowed
        #: TTFP and outcome series on the session-ordinal clock.  Gateway
        #: TTFP is a *measured* wall time (unlike the replay driver's
        #: modeled series), so these rollups are operational telemetry,
        #: not golden-pinnable output.
        self.rollups = rollups
        self._asr_record = next(
            (s.record for s in self.plan.stages if s.service == ASR), True
        )
        self._next_ordinal = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="stream-gateway"
        )

    def open_session(self, query) -> GatewaySession:
        """Admit one query; its ordinal is fixed now, in arrival order."""
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        session = self.executor.services[ASR].open_session(
            query=query,
            ordinal=ordinal,
            seed=self.executor.trace_seed,
            record=self._asr_record,
            endpoint_config=self.endpoint_config,
        )
        return GatewaySession(self, session, query, ordinal)

    async def _call(self, fn: Callable, *args):
        """Run one blocking session bout on the pool, off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, lambda: fn(*args))

    def _observe_ttfp(self, seconds: float, ordinal: int = 0) -> None:
        if self.executor.metrics is not None:
            self.executor.metrics.histogram(TTFP_HISTOGRAM).observe(seconds)
        if self.rollups is not None:
            self.rollups.observe(TTFP_METRIC, float(ordinal), seconds)

    def _record(self, response, ordinal: int = 0) -> None:
        if self.executor.metrics is not None:
            record_response(self.executor.metrics, response)
        if self.rollups is not None:
            if getattr(response, "failed", False):
                status = "failed"
            elif getattr(response, "degraded", False):
                status = "degraded"
            else:
                status = "ok"
            self.rollups.inc(QUERIES_METRIC, float(ordinal), status=status)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "StreamingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- synchronous driver -------------------------------------------------------------


def chunk_waveform(
    waveform: Waveform, chunk_seconds: float = 0.1
) -> List[Waveform]:
    """Cut an utterance into the arrival chunks a microphone would deliver."""
    if chunk_seconds <= 0:
        raise ConfigurationError("chunk_seconds must be positive")
    step = max(int(chunk_seconds * waveform.sample_rate), 1)
    samples = waveform.samples
    if len(samples) <= step:
        return [waveform]
    return [
        Waveform(samples[offset : offset + step], waveform.sample_rate)
        for offset in range(0, len(samples), step)
    ]


@dataclass
class StreamReport:
    """What one driven stream produced, for benches and smoke checks."""

    responses: List[Any] = field(default_factory=list)
    partial_counts: List[int] = field(default_factory=list)
    ttfp_seconds: List[Optional[float]] = field(default_factory=list)
    endpointed: List[bool] = field(default_factory=list)
    late_chunks: int = 0

    @property
    def partials_total(self) -> int:
        return sum(self.partial_counts)


async def _drive(
    gateway: StreamingGateway,
    queries: Sequence[Any],
    chunk_seconds: float,
) -> Tuple[List[GatewaySession], List[Any]]:
    handles = [gateway.open_session(query) for query in queries]
    streams = [
        chunk_waveform(handle.query.audio, chunk_seconds) for handle in handles
    ]
    # Round-robin the chunks: every session's next chunk is delivered
    # concurrently with every other session's — the slow-arriving-audio
    # interleaving the gateway exists to absorb.
    rounds = max(len(stream) for stream in streams) if streams else 0
    for index in range(rounds):
        await asyncio.gather(*(
            handle.feed(stream[index])
            for handle, stream in zip(handles, streams)
            if index < len(stream)
        ))
    responses = await asyncio.gather(*(handle.finish() for handle in handles))
    return handles, list(responses)


def serve_streams(
    executor: PlanExecutor,
    queries: Sequence[Any],
    *,
    chunk_seconds: float = 0.1,
    max_workers: int = 8,
    plan: Optional[QueryPlan] = None,
    on_error: str = DEGRADE,
    poll_on_feed: bool = True,
    endpoint_config: Any = None,
) -> StreamReport:
    """Drive a whole query stream through a gateway, synchronously.

    The entry point ``repro serve-bench --streaming``, the ``serve.
    streaming`` benchmark, and the CI smoke step share: opens one session
    per query (ordinals in list order), interleaves all sessions' chunks
    round-robin, finishes everything, and reports responses plus streaming
    responsiveness (partial counts, TTFP, endpoint decisions).
    """
    gateway = StreamingGateway(
        executor,
        plan=plan,
        max_workers=max_workers,
        on_error=on_error,
        poll_on_feed=poll_on_feed,
        endpoint_config=endpoint_config,
    )
    try:
        handles, responses = asyncio.run(_drive(gateway, queries, chunk_seconds))
    finally:
        gateway.close()
    return StreamReport(
        responses=responses,
        partial_counts=[len(handle.partials) for handle in handles],
        ttfp_seconds=[handle.ttfp for handle in handles],
        endpointed=[handle.session.endpointed for handle in handles],
        late_chunks=sum(handle.late_chunks for handle in handles),
    )
