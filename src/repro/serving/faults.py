"""Deterministic fault injection for the serving layer.

Chaos testing is only useful when a failure scenario can be *replayed*: a
flaky overlap of timeouts and retries that cannot be reproduced cannot be
debugged or regression-tested.  This module therefore makes every injected
fault a pure function of ``(seed, service, ordinal, attempt)``:

- ``ordinal`` is the query's position in its ``run_all`` stream (stamped
  onto every :class:`~repro.serving.service.ServiceRequest` by the
  executor), so the *same queries* fail in the *same way* whichever
  execution backend — serial, thread pool, forked processes, or
  stage-batched — happens to run them, in whatever order;
- ``attempt`` is the retry attempt number (stamped by
  :class:`~repro.serving.resilience.ResilientService`), so a rule can fail
  the first attempt and let the retry succeed.

A :class:`FaultPlan` maps service names to ordered :class:`FaultRule`
tuples.  Rules express the four failure shapes the chaos suite exercises:
injected latency spikes (charged to a *virtual* clock so tests stay fast
and deadlines stay deterministic), coded error raises, payload corruption,
and flapping/outage windows keyed by ordinal.

The virtual-latency ledger lives here too: a thread-local accumulator that
:func:`charge_virtual_seconds` adds to and whoever sits directly above the
faulty call (:class:`~repro.serving.resilience.ResilientService` or the
plan executor) drains into its latency accounting.  Virtual seconds flow
into deadlines, ``service_seconds``, and ``wall_seconds`` exactly like real
ones — without anyone actually sleeping.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, InjectedFaultError
from repro.obs.context import annotate
from repro.profiling import Profiler
from repro.serving.service import Service, ServiceRequest, ServiceStats

#: Fault kinds a :class:`FaultRule` may carry.
LATENCY = "latency"    #: charge ``seconds`` of virtual latency, then serve normally
ERROR = "error"        #: raise :class:`~repro.errors.InjectedFaultError`
CORRUPT = "corrupt"    #: serve, then wrap the payload in :class:`CorruptPayload`
FLAP = "flap"          #: periodic outage: fail ``on`` of every ``on+off`` ordinals
OUTAGE = "outage"      #: one contiguous outage: fail ordinals in ``[start, stop)``

FAULT_KINDS = (LATENCY, ERROR, CORRUPT, FLAP, OUTAGE)


# -- virtual-latency ledger -------------------------------------------------------


class _VirtualLedger(threading.local):
    """Per-thread accumulator of injected (not slept) latency seconds."""

    def __init__(self):
        self.charged = 0.0


_LEDGER = _VirtualLedger()


def charge_virtual_seconds(seconds: float) -> None:
    """Add injected latency to the calling thread's ledger."""
    if seconds < 0:
        raise ConfigurationError("virtual latency must be >= 0")
    _LEDGER.charged += seconds
    # Virtual seconds are seed-deterministic, so they may live in span
    # attributes (unlike measured wall times); accumulate on the innermost
    # open span so attempt and stage spans both see their share.
    if seconds > 0:
        annotate("virtual_seconds", seconds, add=True)


def drain_virtual_seconds() -> float:
    """Return and reset the calling thread's charged virtual latency."""
    value = _LEDGER.charged
    _LEDGER.charged = 0.0
    return value


class VirtualLatencyAware(Service):
    """Service base whose ``__call__`` folds virtual latency into its stats.

    The base :meth:`Service.__call__` measures wall time only; wrappers that
    charge the virtual ledger (fault injectors, resilience retries) subclass
    this so batched/threaded dispatch — which consumes ``stats.seconds``
    directly — sees injected latency exactly like real latency.
    """

    def __call__(self, request: ServiceRequest, profiler: Optional[Profiler] = None):
        drain_virtual_seconds()  # reset any leak from a failed call on this thread
        response = super().__call__(request, profiler)
        virtual = drain_virtual_seconds()
        if virtual > 0:
            # replace() so measured fields beyond seconds (wait_seconds,
            # batch_size) survive the restamp instead of being reset.
            response.stats = replace(
                response.stats, seconds=response.stats.seconds + virtual
            )
        return response


# -- fault plans ------------------------------------------------------------------


class CorruptPayload:
    """Marker wrapper for a payload garbled in transit.

    :class:`~repro.serving.resilience.ResilientService` detects the
    ``__sirius_corrupt__`` marker and classifies the call as failed (so the
    corruption is retried, then degraded); an unguarded pipeline would crash
    on it, which is exactly the hazard the resilience layer removes.
    """

    __sirius_corrupt__ = True

    def __init__(self, original: Any):
        self.original = original

    def __repr__(self) -> str:
        return f"<CorruptPayload {self.original!r}>"


@dataclass(frozen=True)
class FaultRule:
    """One failure behaviour for one service.

    ``rate`` applies to the probabilistic kinds (``latency`` / ``error`` /
    ``corrupt``): each ``(ordinal, attempt)`` draws an independent seeded
    coin.  ``flap``/``outage`` are deterministic windows over ordinals and
    ignore ``rate``.  ``max_attempt`` (when set) stops injecting from that
    attempt on, letting retries recover — the retry-path lever.
    """

    kind: str
    rate: float = 1.0            #: per-call trigger probability (latency/error/corrupt)
    seconds: float = 0.0         #: virtual latency charged by ``latency`` faults
    code: str = ""               #: error code override for ``error``/``flap``/``outage``
    on: int = 0                  #: ``flap``: failing ordinals per period
    off: int = 0                 #: ``flap``: healthy ordinals per period
    start: int = 0               #: ``outage``: first failing ordinal
    stop: int = 0                #: ``outage``: first healthy ordinal again
    max_attempt: Optional[int] = None  #: inject only while ``attempt < max_attempt``

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("fault rate must be in [0, 1]")
        if self.seconds < 0:
            raise ConfigurationError("fault latency must be >= 0")
        if self.kind == LATENCY and self.seconds == 0:
            raise ConfigurationError("latency fault needs seconds > 0")
        if self.kind == FLAP and (self.on < 1 or self.off < 0):
            raise ConfigurationError("flap fault needs on >= 1 and off >= 0")
        if self.kind == OUTAGE and self.stop <= self.start:
            raise ConfigurationError("outage fault needs stop > start")
        if self.max_attempt is not None and self.max_attempt < 1:
            raise ConfigurationError("max_attempt must be >= 1 when set")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, replayable assignment of faults to service calls.

    ``rules`` maps service names (``"asr"``/``"classify"``/``"qa"``/``"imm"``
    or any custom service) to an ordered tuple of rules; the first rule that
    triggers for a call wins.  :meth:`fault_for` is a pure function — two
    plans with equal seed and rules agree on every decision, in every
    process, under every interleaving.
    """

    seed: int = 0
    rules: Mapping[str, Tuple[FaultRule, ...]] = field(default_factory=dict)

    def rules_for(self, service: str) -> Tuple[FaultRule, ...]:
        return tuple(self.rules.get(service, ()))

    def fault_for(
        self, service: str, ordinal: int, attempt: int
    ) -> Optional[FaultRule]:
        """The rule (if any) that fires for this exact call, deterministically."""
        for index, rule in enumerate(self.rules_for(service)):
            if rule.max_attempt is not None and attempt >= rule.max_attempt:
                continue
            if rule.kind == FLAP:
                if ordinal % (rule.on + rule.off) < rule.on:
                    return rule
                continue
            if rule.kind == OUTAGE:
                if rule.start <= ordinal < rule.stop:
                    return rule
                continue
            if rule.rate >= 1.0:
                return rule
            if rule.rate <= 0.0:
                continue
            # Seeded per-call coin: random.Random seeds strings via sha512,
            # so the draw is stable across processes and PYTHONHASHSEED.
            rng = random.Random(f"{self.seed}:{service}:{ordinal}:{attempt}:{index}")
            if rng.random() < rule.rate:
                return rule
        return None


class FaultInjector(VirtualLatencyAware):
    """Service wrapper that injects the plan's faults ahead of the real call.

    Stateless by design: the decision for every call comes from
    :meth:`FaultPlan.fault_for`, so wrapping the same services with the same
    plan twice replays the same failures.  Meant to sit *under* a
    :class:`~repro.serving.resilience.ResilientService` (corrupted payloads
    are detected there); an unguarded injector demonstrates exactly the
    crashes the resilience layer exists to absorb.
    """

    def __init__(self, inner: Service, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.label = inner.label

    def warmup(self) -> None:
        self.inner.warmup()

    def invoke(self, request: ServiceRequest, profiler: Profiler):
        rule = self.plan.fault_for(self.name, request.ordinal, request.attempt)
        if rule is None:
            return self.inner.invoke(request, profiler)
        annotate("fault.kind", rule.kind)
        if rule.code:
            annotate("fault.code", rule.code)
        if rule.kind == LATENCY:
            charge_virtual_seconds(rule.seconds)
            return self.inner.invoke(request, profiler)
        if rule.kind == CORRUPT:
            return CorruptPayload(self.inner.invoke(request, profiler))
        raise InjectedFaultError(
            f"injected {rule.kind} fault in {self.name!r} "
            f"(ordinal={request.ordinal}, attempt={request.attempt})",
            service=self.name,
            code=rule.code,
        )

    def __repr__(self) -> str:
        return f"<FaultInjector {self.name} seed={self.plan.seed}>"


def default_chaos_plan(seed: int) -> FaultPlan:
    """The canonical mixed-failure plan behind ``repro serve-bench --chaos``.

    Exercises every degradation path: QA sees latency spikes past its
    deadline, first-attempt errors that retries absorb, and occasional
    corruption; IMM flaps periodically (degrading VIQ queries to VQ and
    rattling its circuit breaker); ASR — the fatal service — suffers one
    short outage whose queries fail outright, plus rare transient errors.
    """
    return FaultPlan(
        seed=seed,
        rules={
            "asr": (
                FaultRule(kind=OUTAGE, start=5, stop=6),
                FaultRule(kind=ERROR, rate=0.06, max_attempt=1),
            ),
            "qa": (
                FaultRule(kind=LATENCY, rate=0.25, seconds=3.0),
                FaultRule(kind=ERROR, rate=0.20, max_attempt=1),
                FaultRule(kind=CORRUPT, rate=0.10, max_attempt=1),
            ),
            "imm": (
                FaultRule(kind=FLAP, on=2, off=3),
            ),
        },
    )
