"""Command-line interface for the Sirius reproduction.

Subcommands::

    repro query "what is the capital of italy" [--image-scene 1]
    repro demo [--asr-backend dnn] [--limit 10]
    repro suite [--scale 0.25] [--workers 4]
    repro serve-bench [--queries 16] [--backend process] [--workers 2]
    repro serve-bench --trace spans.jsonl --chrome-trace trace.json --metrics
    repro serve-bench --chaos 42 [--queries 16] [--trace spans.jsonl]
    repro serve-bench --streaming [--queries 16] [--chunk-ms 100] [--trace spans.jsonl]
    repro cluster-bench [--smoke] [--replicas 3] [--shards 2] [--policy power-of-two]
    repro trace-report spans.jsonl [--limit 3] [--chrome trace.json] [--mm1 0.7]
    repro trace-report spans.jsonl --critical-path [--tail-quantile 0.99] --roofline
    repro bench [run] [--quick] [--json] [--tag pr5] [--filter suite.]
    repro bench --check BASELINE.json   (or: repro bench check BASELINE.json)
    repro bench list
    repro design
    repro wer [--noise 0.0 0.05 0.1]
    repro lint [paths ...] [--format json] [--fail-on warning]

Run as ``python -m repro.cli <subcommand>`` (or the ``sirius-repro``
console script once installed).

Exit codes: 0 on success, 1 when ``lint`` reports findings, 2 when a
command fails with a :class:`repro.errors.SiriusError` (the error prints
as ``error[CODE]: message`` on stderr).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.asr import Synthesizer
    from repro.core import IPAQuery, SiriusPipeline
    from repro.imm.image import SceneGenerator

    pipeline = SiriusPipeline.build(asr_backend=args.asr_backend)
    image = None
    if args.image_scene is not None:
        image = SceneGenerator().query_for(args.image_scene)
    query = IPAQuery(
        audio=Synthesizer(seed=args.seed).synthesize(args.text),
        image=image,
        text=args.text,
    )
    response = pipeline.process(query)
    print(response.summary())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import InputSet, SiriusPipeline

    pipeline = SiriusPipeline.build(asr_backend=args.asr_backend)
    inputs = InputSet.build()
    queries = inputs.all_queries[: args.limit] if args.limit else inputs.all_queries
    correct = 0
    for query in queries:
        response = pipeline.process(query)
        ok = response.transcript == query.text and (
            not query.expected_answer
            or query.expected_answer in response.answer.lower()
        )
        correct += ok
        print(("  " if ok else "! ") + response.summary())
    print(f"\n{correct}/{len(queries)} fully correct")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    import contextlib

    from repro.analysis import format_table
    from repro.obs.context import use_tracer
    from repro.obs.trace import Tracer
    from repro.suite import all_kernels

    tracer = Tracer(seed=0) if args.trace else None
    rows = []
    with use_tracer(tracer) if tracer else contextlib.nullcontext():
        for ordinal, kernel in enumerate(all_kernels()):
            inputs = kernel.prepare(args.scale)
            run_span = (
                tracer.trace(ordinal, name=f"suite:{kernel.name}")
                if tracer else contextlib.nullcontext()
            )
            with run_span:
                base = kernel.execute(inputs=inputs)
                port = kernel.execute(inputs=inputs, workers=args.workers,
                                      use_processes=args.processes)
            rows.append(
                [kernel.service, kernel.name, base.items,
                 f"{base.seconds * 1000:.1f}", f"{port.seconds * 1000:.1f}"]
            )
    if tracer is not None:
        from repro.obs.export import write_jsonl

        write_jsonl(tracer.spans, args.trace)
        print(f"wrote {len(tracer.spans)} spans to {args.trace}")
    print(format_table(
        f"Sirius Suite (scale={args.scale})",
        ["Service", "Kernel", "Items", "Baseline (ms)",
         f"{args.workers}-{'proc' if args.processes else 'thread'} (ms)"],
        rows,
    ))
    return 0


def _chaos_fingerprint(responses):
    """The replay-comparable projection of a response stream."""
    return [
        (r.query_type.value, r.transcript, r.answer, r.matched_image,
         r.degraded, tuple(sorted(r.failures.items())))
        for r in responses
    ]


def _cmd_chaos_bench(args: argparse.Namespace, pipeline, queries) -> int:
    """``serve-bench --chaos SEED``: availability under injected failures.

    Runs the stream twice through *freshly wrapped* resilient services (same
    seed, fresh breaker state) and checks the outcomes replay identically —
    the determinism contract the chaos test suite locks down.  With
    ``--trace`` the runs are traced too, the span forests are compared
    (IDs, parentage, attributes — wall times excluded), and the first run's
    *deterministic* (timing-stripped) export is written, so two invocations
    with the same seed produce byte-identical trace files.
    """
    from collections import Counter

    from repro.analysis import format_table
    from repro.obs import collect_spans, to_jsonl, write_chrome_trace
    from repro.serving import default_chaos_plan, default_policies, resilient_executor

    plan = default_chaos_plan(args.chaos)
    tracing = bool(args.trace or args.chrome_trace or args.metrics)

    def run_once():
        executor = resilient_executor(
            pipeline.serving, default_policies(seed=args.chaos), plan
        )
        if tracing:
            executor.trace_seed = args.chaos
        executor.warmup()
        return executor.run_all(queries, on_error="degrade")

    first = run_once()
    second = run_once()
    if _chaos_fingerprint(first) != _chaos_fingerprint(second):
        print("warning: chaos outcomes did not replay identically", file=sys.stderr)

    spans_replayed = True
    if tracing:
        spans = collect_spans(first)
        deterministic = to_jsonl(spans, timing=False)
        spans_replayed = (
            deterministic == to_jsonl(collect_spans(second), timing=False)
        )
        if args.trace:
            with open(args.trace, "w") as handle:
                handle.write(deterministic)
            print(f"wrote {len(spans)} spans (deterministic export) "
                  f"to {args.trace}", file=sys.stderr)
        if args.chrome_trace:
            n_events = write_chrome_trace(spans, args.chrome_trace)
            print(f"wrote {n_events} trace events to {args.chrome_trace}",
                  file=sys.stderr)
        if args.metrics:
            from repro.obs import format_service_summary, metrics_from_spans

            print(format_service_summary(
                metrics_from_spans(spans),
                title=f"Chaos latency (seed={args.chaos}, from spans)",
            ))

    n = len(first)
    n_failed = sum(1 for r in first if r.failed)
    n_degraded = sum(1 for r in first if r.degraded and not r.failed)
    n_ok = n - n_failed - n_degraded
    codes = Counter(
        f"{label}:{code}" for r in first for label, code in sorted(r.failures.items())
    )
    rows = [
        ["ok (full quality)", str(n_ok), f"{n_ok / n:.3f}"],
        ["degraded", str(n_degraded), f"{n_degraded / n:.3f}"],
        ["failed", str(n_failed), f"{n_failed / n:.3f}"],
        ["available (ok+degraded)", str(n_ok + n_degraded),
         f"{(n_ok + n_degraded) / n:.3f}"],
    ]
    print(format_table(
        f"Chaos serving (seed={args.chaos}, {n} queries)",
        ["Outcome", "Queries", "Fraction"], rows,
    ))
    if codes:
        print("failure codes: "
              + ", ".join(f"{key}×{count}" for key, count in sorted(codes.items())))
    replayed = _chaos_fingerprint(first) == _chaos_fingerprint(second)
    print(f"replay determinism: {'ok' if replayed else 'FAILED'}")
    if tracing:
        print(f"span replay determinism: {'ok' if spans_replayed else 'FAILED'}")
    return 0 if (replayed and spans_replayed) else 2


def _cmd_streaming_bench(args: argparse.Namespace, pipeline, queries) -> int:
    """``serve-bench --streaming``: the session front door, measured.

    Drives every query through the asyncio gateway in arrival-interleaved
    audio chunks (partials polled on each feed, endpointing armed), then
    checks the streaming-equivalence anchor: a session fed the whole
    utterance as one chunk and finished without polling must reproduce
    ``PlanExecutor.run`` *byte-identically* — response fields and the
    timing-stripped span export both.  Exits 2 when the anchor breaks.
    """
    import time

    from repro.analysis import format_table
    from repro.obs import (
        MetricsRegistry,
        collect_spans,
        format_service_summary,
        to_jsonl,
        write_chrome_trace,
    )
    from repro.obs.metrics import percentile
    from repro.serving import ASR, serve_streams

    executor = pipeline.serving
    registry = MetricsRegistry()
    executor.trace_seed = 0
    executor.metrics = registry
    executor.warmup()
    try:
        start = time.perf_counter()
        report = serve_streams(
            executor,
            queries,
            chunk_seconds=args.chunk_ms / 1000.0,
            max_workers=args.workers if args.workers else 8,
        )
        wall = time.perf_counter() - start

        mismatched = []
        for ordinal, query in enumerate(queries):
            reference = executor.run(query, ordinal=ordinal, on_error="degrade")
            session = executor.services[ASR].open_session(
                query=query, ordinal=ordinal, seed=executor.trace_seed
            )
            session.feed(query.audio)
            outcome = session.finish()
            replay = executor.run(
                query, ordinal=ordinal, precomputed={ASR: outcome},
                wall_start=session.opened_at, on_error="degrade",
            )
            same_fields = (
                _chaos_fingerprint([reference]) == _chaos_fingerprint([replay])
            )
            same_spans = (
                to_jsonl(reference.spans, timing=False)
                == to_jsonl(replay.spans, timing=False)
            )
            if not (same_fields and same_spans):
                mismatched.append(ordinal)
    finally:
        executor.trace_seed = None
        executor.metrics = None

    n = len(queries)
    ttfps = [t for t in report.ttfp_seconds if t is not None]
    rows = [
        ["sessions", str(n)],
        ["wall seconds", f"{wall:.2f}"],
        ["sessions/s", f"{n / wall:.2f}"],
        ["partials emitted", str(report.partials_total)],
        ["endpointed early", str(sum(report.endpointed))],
        ["late chunks dropped", str(report.late_chunks)],
        ["ttfp p50 (ms)", f"{percentile(ttfps, 50) * 1000:.1f}"],
        ["ttfp p95 (ms)", f"{percentile(ttfps, 95) * 1000:.1f}"],
    ]
    print(format_table(
        f"Streaming gateway ({n} {args.mix.upper()} queries, "
        f"{args.chunk_ms} ms chunks)",
        ["Metric", "Value"], rows,
    ))
    print(format_service_summary(
        registry, title="Streaming latency (TTFP next to e2e)"
    ))

    spans = collect_spans(report.responses)
    if args.trace:
        from repro.obs import write_jsonl

        n_spans = write_jsonl(spans, args.trace)
        print(f"wrote {n_spans} spans to {args.trace}", file=sys.stderr)
    if args.chrome_trace:
        n_events = write_chrome_trace(spans, args.chrome_trace)
        print(f"wrote {n_events} trace events to {args.chrome_trace}",
              file=sys.stderr)

    if mismatched:
        print(f"single-chunk equivalence: FAILED at ordinals {mismatched}")
    else:
        print("single-chunk equivalence: byte-identical "
              f"(fields + deterministic spans, {n} queries)")
    return 2 if mismatched else 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import time

    from repro.analysis import format_table
    from repro.core import InputSet, QueryType, SiriusPipeline

    pipeline = SiriusPipeline.build(asr_backend=args.asr_backend)
    inputs = InputSet.build()
    base = (
        inputs.by_type(QueryType.VOICE_QUERY)
        if args.mix == "vq"
        else inputs.all_queries
    )
    queries = [base[i % len(base)] for i in range(args.queries)]
    if args.chaos is not None:
        return _cmd_chaos_bench(args, pipeline, queries)
    if args.streaming:
        return _cmd_streaming_bench(args, pipeline, queries)
    from repro.obs import (
        MetricsRegistry,
        collect_spans,
        format_service_summary,
        write_chrome_trace,
        write_jsonl,
    )

    executor = pipeline.serving
    executor.warmup()

    def timed(**kwargs):
        start = time.perf_counter()
        responses = executor.run_all(queries, **kwargs)
        return time.perf_counter() - start, responses

    sequential_s, sequential = timed()
    # Only the batched run is traced/measured: tracing the reference run too
    # would double-count every query in the exported forest and metrics.
    registry = MetricsRegistry() if args.metrics else None
    if args.trace or args.chrome_trace:
        executor.trace_seed = 0
    executor.metrics = registry
    try:
        batched_s, batched = timed(
            backend=args.backend, batch_stages=True, workers=args.workers
        )
    finally:
        executor.trace_seed = None
        executor.metrics = None
    if any(a.answer != b.answer for a, b in zip(sequential, batched)):
        print("warning: batched answers diverge from sequential", file=sys.stderr)
    rows = [
        ["sequential", "serial", f"{sequential_s:.2f}",
         f"{len(queries) / sequential_s:.2f}"],
        ["batched", args.backend, f"{batched_s:.2f}",
         f"{len(queries) / batched_s:.2f}"],
    ]
    print(format_table(
        f"Serving throughput ({len(queries)} {args.mix.upper()} queries)",
        ["Mode", "Backend", "Seconds", "Queries/s"], rows,
    ))
    print(f"batched speedup over sequential: {sequential_s / batched_s:.2f}x")
    spans = collect_spans(batched)
    if args.trace:
        n_spans = write_jsonl(spans, args.trace)
        print(f"wrote {n_spans} spans to {args.trace}", file=sys.stderr)
    if args.chrome_trace:
        n_events = write_chrome_trace(spans, args.chrome_trace)
        print(f"wrote {n_events} trace events to {args.chrome_trace}",
              file=sys.stderr)
    if registry is not None:
        print(format_service_summary(
            registry, title="Serving latency (batched run)"
        ))
    return 0


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    """``repro cluster-bench``: the fleet layer, live and at model scale.

    Two halves, both determinism-checked:

    1. **Live fleet** — a few real queries through sharded replica
       executors behind the router, run *twice* (and across backends) to
       verify outcome and timing-stripped-span byte-identity, with the
       router visible as its own critical-path stage.
    2. **Model replay** — an open-loop seeded arrival stream (50 k queries
       in ``--smoke``) against the virtual-time fleet, compared against
       the analytic M/M/1 tail and the measured-histogram simulator at
       matched utilization, then extrapolated to a million-query hour.

    Exits 2 if any determinism check fails.
    """
    from repro.analysis import format_table
    from repro.core import InputSet, SiriusPipeline
    from repro.datacenter.arrivals import make_process
    from repro.datacenter.simulation import (
        exponential_sampler,
        histogram_sampler,
        mm1_percentile,
        simulate_from_histogram,
    )
    from repro.obs import (
        MetricsRegistry,
        collect_spans,
        format_critical_path_report,
        to_jsonl,
    )
    from repro.obs.metrics import E2E_HISTOGRAM
    from repro.serving.cluster import (
        AdmissionControl,
        build_cluster,
        extrapolate_fleet,
        replay_cluster,
    )

    if args.smoke:
        args.queries = min(args.queries, 50_000)
        args.live = min(args.live, 6)

    pipeline = SiriusPipeline.build()
    inputs = InputSet.build()
    live_queries = [
        inputs.all_queries[i % len(inputs.all_queries)] for i in range(args.live)
    ]

    # -- live fleet ---------------------------------------------------------
    metrics = MetricsRegistry()
    admission = (
        AdmissionControl(drop_rate=args.drop_rate, seed=args.seed)
        if args.drop_rate > 0
        else None
    )
    cluster = build_cluster(
        pipeline,
        n_replicas=args.replicas,
        n_shards=args.shards,
        policy=args.policy,
        seed=args.seed,
        admission=admission,
        metrics=metrics,
        trace_seed=args.seed,
    )
    cluster.warmup()
    first = cluster.run_all(live_queries, backend=args.backend)
    second = cluster.run_all(live_queries, backend=args.backend)
    outcomes_ok = _chaos_fingerprint(first) == _chaos_fingerprint(second)
    spans = collect_spans(first)
    spans_ok = to_jsonl(spans, timing=False) == to_jsonl(
        collect_spans(second), timing=False
    )

    n = len(first)
    n_failed = sum(1 for r in first if r.failed)
    n_degraded = sum(1 for r in first if r.degraded and not r.failed)
    depth = metrics.histogram("serve.router.queue_depth")
    rows = [
        ["queries", str(n)],
        ["replicas x shards", f"{cluster.n_replicas} x {args.shards}"],
        ["policy", cluster.policy.name],
        ["ok / degraded / failed",
         f"{n - n_degraded - n_failed} / {n_degraded} / {n_failed}"],
        ["rejected (admission)",
         str(metrics.counter("serve.router.rejected").value)],
        ["mean queue depth seen", f"{depth.mean:.2f}"],
    ]
    print(format_table(
        f"Live fleet (seed={args.seed}, backend={args.backend})",
        ["Metric", "Value"], rows,
    ))
    print(f"outcome replay determinism: {'ok' if outcomes_ok else 'FAILED'}")
    print(f"span replay determinism:    {'ok' if spans_ok else 'FAILED'}")
    print()
    print(format_critical_path_report(spans))

    # -- model replay vs analytic M/M/1 ------------------------------------
    e2e = metrics.histogram(E2E_HISTOGRAM).snapshot()
    mean_service = max(e2e.mean, 1e-6)
    load = args.load
    rate = load / mean_service  # one-replica parameterization
    process = make_process(args.arrivals, rate)

    analytic_p99 = mm1_percentile(mean_service, load, 99.0)
    exp_replay = replay_cluster(
        process,
        exponential_sampler(mean_service, seed=args.seed + 1),
        args.queries,
        policy="round-robin",
        n_replicas=1,
        seed=args.seed,
    )
    digest_ok = exp_replay.digest() == replay_cluster(
        process,
        exponential_sampler(mean_service, seed=args.seed + 1),
        args.queries,
        policy="round-robin",
        n_replicas=1,
        seed=args.seed,
    ).digest()
    measured_replay = replay_cluster(
        process,
        histogram_sampler(e2e, seed=args.seed + 2),
        args.queries,
        policy=args.policy,
        n_replicas=1,
        seed=args.seed,
    )
    histogram_sim = simulate_from_histogram(
        e2e, load, n_queries=min(args.queries, 20_000), seed=args.seed
    )

    rows = [
        ["mean service (measured, ms)", f"{mean_service * 1000:.1f}"],
        ["target utilization", f"{load:.2f}"],
        ["analytic M/M/1 p99 (ms)", f"{analytic_p99 * 1000:.1f}"],
        [f"replay p99, exponential service ({args.queries} q, ms)",
         f"{exp_replay.p99_response * 1000:.1f}"],
        ["replay vs M/M/1 relative error", f"{exp_replay.mm1_error():.3f}"],
        ["replay p99, measured histogram (ms)",
         f"{measured_replay.p99_response * 1000:.1f}"],
        ["histogram simulator p99 (ms)",
         f"{histogram_sim.p99_response_time * 1000:.1f}"],
        ["replay utilization", f"{exp_replay.utilization:.3f}"],
    ]
    print()
    print(format_table(
        f"Model replay ({args.arrivals} arrivals, seed={args.seed})",
        ["Metric", "Value"], rows,
    ))
    print(f"replay digest determinism:  {'ok' if digest_ok else 'FAILED'}")

    estimate = extrapolate_fleet(measured_replay, target_queries=1_000_000)
    print(
        f"extrapolated fleet: {estimate.n_replicas} replicas serve "
        f"{estimate.target_queries:,} queries/hour "
        f"({estimate.target_rate:.0f} q/s) at per-replica load {load:.2f}, "
        f"projected p99 {estimate.projected_p99 * 1000:.0f} ms"
    )
    return 0 if (outcomes_ok and spans_ok and digest_ok) else 2


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.errors import ObsError
    from repro.obs import read_jsonl, render_report, write_chrome_trace

    spans = read_jsonl(args.path)
    if not spans:
        raise ObsError(
            f"span export {args.path!r} contains no spans; was the trace "
            "written with tracing enabled (serve-bench --trace)?"
        )
    if args.chrome:
        n_events = write_chrome_trace(spans, args.chrome)
        print(f"wrote {n_events} trace events to {args.chrome}", file=sys.stderr)
    sections = [render_report(spans, limit=args.limit, mm1_load=args.mm1)]
    if args.critical_path:
        from repro.obs import format_critical_path_report

        sections.append(format_critical_path_report(
            spans, quantile=args.tail_quantile
        ))
    if args.roofline:
        from repro.obs import format_roofline

        sections.append(format_roofline(spans))
    print("\n\n".join(sections))
    return 0


def _cmd_fleet_report(args: argparse.Namespace) -> int:
    """``repro fleet-report``: the fleet health dashboard.

    Rollups, SLO burn rates, the autoscaler trajectory, and the trace
    sampling bill in one deterministic page.  Two sources:

    - **replay mode** (default): a seeded virtual-time cluster replay —
      arrivals, routing, optional autoscaling — evaluated end to end;
    - **span mode** (positional path): a timing-stripped JSONL span
      export from ``serve-bench --trace`` or a live cluster run,
      projected onto the ordinal clock.

    ``--json`` prints canonical JSON for golden pinning; ``--smoke``
    rebuilds the whole report from scratch and exits 2 unless both
    renderings are byte-identical.
    """
    from repro.datacenter.arrivals import make_process
    from repro.datacenter.simulation import exponential_sampler
    from repro.errors import ObsError
    from repro.obs import read_jsonl
    from repro.obs.fleet_report import (
        render_fleet_report,
        report_from_replay,
        report_from_spans,
        report_to_json,
    )
    from repro.obs.slo import default_slos
    from repro.serving.cluster import replay_cluster
    from repro.serving.cluster.autoscaler import AutoscalerPolicy

    if args.smoke:
        args.queries = min(args.queries, 2_000)

    slos = default_slos(
        e2e_threshold=args.e2e_slo, ttfp_threshold=args.ttfp_slo
    )

    if args.path:
        spans = read_jsonl(args.path)
        if not spans:
            raise ObsError(
                f"span export {args.path!r} contains no spans; was the "
                "trace written with tracing enabled (serve-bench --trace)?"
            )

        def build():
            return report_from_spans(
                spans,
                window=args.window,
                head_rate=args.head_rate,
                top_k=args.top_k,
                sample_seed=args.seed,
                slos=slos,
            )
    else:
        def build():
            result = replay_cluster(
                make_process(args.arrivals, args.rate),
                exponential_sampler(args.service_mean, seed=args.seed + 1),
                args.queries,
                policy=args.policy,
                n_replicas=args.replicas,
                seed=args.seed,
                autoscaler=(
                    AutoscalerPolicy(slo_p99=args.e2e_slo)
                    if args.autoscale else None
                ),
                tick_seconds=args.window,
            )
            return report_from_replay(
                result,
                head_rate=args.head_rate,
                top_k=args.top_k,
                sample_seed=args.seed,
                trace_seed=args.seed,
                slos=slos,
            )

    report = build()
    rendered = (
        report_to_json(report) if args.json else render_fleet_report(report)
    )
    print(rendered, end="")

    if args.smoke:
        again = build()
        stable = (
            report_to_json(again) == report_to_json(report)
            and render_fleet_report(again) == render_fleet_report(report)
        )
        print(
            f"fleet-report determinism: {'ok' if stable else 'FAILED'}",
            file=sys.stderr,
        )
        if not stable:
            return 2
    return 0


def _cmd_cost_report(args: argparse.Namespace) -> int:
    """``repro cost-report``: the per-query joule/dollar ledger.

    Folds a span export (or a seeded cluster replay) into per-query,
    per-stage energy and dollars with the AI-tax decomposition, reprices
    the same trace on CMP/GPU/Phi/FPGA, and (``--fleet``) extrapolates to
    the million-query day.  Every number derives from seeds, virtual
    time, and the Table 5/6/7 constants — never wall clocks — so the
    ledger is byte-identical across execution backends.

    ``--json`` prints canonical JSON for golden pinning; ``--smoke``
    rebuilds the whole report from scratch and exits 2 unless both
    renderings are byte-identical.
    """
    from repro.datacenter.arrivals import make_process
    from repro.datacenter.simulation import exponential_sampler
    from repro.errors import ObsError
    from repro.obs import read_jsonl
    from repro.obs.cost import (
        cost_report_from_replay,
        cost_report_from_spans,
        render_cost_report,
        report_to_json,
    )
    from repro.serving.cluster import replay_cluster
    from repro.serving.cluster.autoscaler import AutoscalerPolicy

    if args.smoke:
        args.queries = min(args.queries, 2_000)

    if args.path:
        spans = read_jsonl(args.path)
        if not spans:
            raise ObsError(
                f"span export {args.path!r} contains no spans; was the "
                "trace written with tracing enabled (serve-bench --trace)?"
            )

        def build():
            return cost_report_from_spans(
                spans,
                platform=args.platform,
                fleet=args.fleet,
                target_queries=args.target_queries,
            )
    else:
        def build():
            result = replay_cluster(
                make_process(args.arrivals, args.rate),
                exponential_sampler(args.service_mean, seed=args.seed + 1),
                args.queries,
                policy=args.policy,
                n_replicas=args.replicas,
                seed=args.seed,
                autoscaler=(
                    AutoscalerPolicy(slo_p99=args.e2e_slo)
                    if args.autoscale else None
                ),
            )
            return cost_report_from_replay(
                result,
                platform=args.platform,
                fleet=args.fleet,
                target_queries=args.target_queries,
            )

    report = build()
    rendered = (
        report_to_json(report) if args.json else render_cost_report(report)
    )
    print(rendered, end="")

    if args.smoke:
        again = build()
        stable = (
            report_to_json(again) == report_to_json(report)
            and render_cost_report(again) == render_cost_report(report)
        )
        print(
            f"cost-report determinism: {'ok' if stable else 'FAILED'}",
            file=sys.stderr,
        )
        if not stable:
            return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run the registry and/or gate against a baseline."""
    from repro.obs import bench

    action = args.action
    baseline_path = args.baseline or args.check
    if action == "run" and args.check:
        action = "check"
    if action == "check" and not baseline_path:
        print("error[CONFIG]: bench check needs a baseline "
              "(repro bench --check BASELINE.json)", file=sys.stderr)
        return 2

    if action == "list":
        for benchmark in bench.all_benchmarks():
            gated = ", ".join(
                metric for metric, spec in sorted(benchmark.metric_specs.items())
                if spec.gated
            )
            print(f"{benchmark.name:<16} {benchmark.description}")
            print(f"{'':<16} gated: {gated}")
        return 0

    def progress(message: str) -> None:
        print(message, file=sys.stderr)

    def run_current():
        if args.current:
            return bench.load_report(args.current)
        return bench.run_benchmarks(
            filters=args.filter, quick=args.quick, repeats=args.repeats,
            tag=args.tag, progress=progress,
        )

    if action == "run":
        report = run_current()
        out_path = args.out or f"BENCH_{args.tag}.json"
        if args.json:
            with open(out_path, "w") as handle:
                handle.write(bench.to_json(report))
            print(f"wrote {len(report['benchmarks'])} benchmarks to {out_path}",
                  file=sys.stderr)
        print(bench.format_report(report))
        return 0

    # action == "check"
    baseline = bench.load_report(baseline_path)
    current = run_current()
    findings = bench.check_report(current, baseline)
    print(bench.format_findings(findings))
    return 1 if findings else 0


def _cmd_design(args: argparse.Namespace) -> int:  # noqa: ARG001
    from repro.analysis import format_matrix, format_table
    from repro.datacenter import DatacenterDesigner, paper_gap
    from repro.platforms import PLATFORMS, service_speedup_table

    designer = DatacenterDesigner()
    print(format_matrix(
        "Service speedups", "Service", service_speedup_table(),
        columns=list(PLATFORMS),
    ))
    table8 = designer.homogeneous_table()
    rows = [[objective, *[choices[name] for name in choices]]
            for objective, choices in table8.items()]
    print("\n" + format_table(
        "Homogeneous DC design",
        ["Objective", *next(iter(table8.values())).keys()], rows,
    ))
    gap = paper_gap()
    for platform in ("gpu", "fpga"):
        improvement = designer.average_query_latency_improvement(platform)
        print(f"{platform.upper():5s} avg query speedup {improvement:5.1f}x; "
              f"residual gap {gap.bridged_gap(improvement):5.1f}x")
    return 0


def _cmd_wer(args: argparse.Namespace) -> int:
    from repro.asr import (
        BigramLanguageModel,
        Decoder,
        collect_training_data,
        train_gmm_acoustic_model,
    )
    from repro.asr.evaluate import noise_robustness_sweep
    from repro.core import all_sentences

    sentences = all_sentences()
    data = collect_training_data(sentences, repetitions=4)
    decoder = Decoder(train_gmm_acoustic_model(data), BigramLanguageModel(sentences))
    sweep = noise_robustness_sweep(decoder, sentences, noise_levels=args.noise)
    for level, result in sweep.items():
        print(f"noise {level:5.2f}: WER {result.wer:6.3f}  "
              f"exact {result.exact_sentences}/{result.total_sentences}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.statcheck.cli import run_lint

    return run_lint(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="sirius-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="process one spoken query")
    query.add_argument("text")
    query.add_argument("--image-scene", type=int, default=None)
    query.add_argument("--asr-backend", choices=("gmm", "dnn"), default="gmm")
    query.add_argument("--seed", type=int, default=2020)
    query.set_defaults(func=_cmd_query)

    demo = sub.add_parser("demo", help="run the 42-query input set")
    demo.add_argument("--asr-backend", choices=("gmm", "dnn"), default="gmm")
    demo.add_argument("--limit", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    suite = sub.add_parser("suite", help="run the 7 Sirius Suite kernels")
    suite.add_argument("--scale", type=float, default=0.25)
    suite.add_argument("--workers", type=int, default=4)
    suite.add_argument("--processes", action="store_true")
    suite.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export kernel spans (with work counters) as JSONL; feed to "
             "``repro trace-report --roofline``",
    )
    suite.set_defaults(func=_cmd_suite)

    serve = sub.add_parser(
        "serve-bench",
        help="serving-layer throughput: sequential vs cross-query batching",
    )
    serve.add_argument("--queries", type=int, default=16)
    serve.add_argument("--mix", choices=("vq", "all"), default="vq")
    serve.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="process"
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument("--asr-backend", choices=("gmm", "dnn"), default="gmm")
    serve.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="run the seeded chaos bench instead: availability/goodput under "
             "the default fault plan, with a replay-determinism check",
    )
    serve.add_argument(
        "--streaming", action="store_true",
        help="drive the asyncio session gateway instead: chunked audio, "
             "partial hypotheses, endpointing, TTFP percentiles, and the "
             "single-chunk byte-equivalence check (exit 2 on mismatch)",
    )
    serve.add_argument(
        "--chunk-ms", type=float, default=100.0, metavar="MS",
        help="audio chunk duration for --streaming (default 100 ms)",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export spans as JSONL (chaos mode writes the deterministic, "
             "timing-stripped form so replays are byte-identical)",
    )
    serve.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="export spans as Chrome trace-event JSON (chrome://tracing)",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="print per-service latency histograms (count/mean/p50/p95/p99)",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    cluster = sub.add_parser(
        "cluster-bench",
        help="cluster serving: routed sharded replicas live, plus the "
             "virtual-time traffic replay vs the M/M/1 model",
    )
    cluster.add_argument("--queries", type=int, default=50_000,
                         help="replay arrival count (default 50000)")
    cluster.add_argument("--live", type=int, default=12,
                         help="real queries through the live fleet")
    cluster.add_argument("--replicas", type=int, default=3)
    cluster.add_argument("--shards", type=int, default=2)
    cluster.add_argument(
        "--policy", default="power-of-two",
        choices=("round-robin", "least-loaded", "power-of-two"),
    )
    cluster.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "diurnal", "bursty"),
    )
    cluster.add_argument("--load", type=float, default=0.7,
                         help="target single-replica utilization (0, 1)")
    cluster.add_argument("--drop-rate", type=float, default=0.0,
                         help="seeded admission drop fraction for the live run")
    cluster.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="serial"
    )
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--smoke", action="store_true",
        help="CI shape: <= 6 live queries, <= 50k replay arrivals",
    )
    cluster.set_defaults(func=_cmd_cluster_bench)

    trace_report = sub.add_parser(
        "trace-report",
        help="render waterfalls and tail percentiles from a span export",
    )
    trace_report.add_argument("path", help="JSONL span export to read")
    trace_report.add_argument(
        "--limit", type=int, default=0,
        help="cap the number of query waterfalls rendered (0 = all)",
    )
    trace_report.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also convert the export to Chrome trace-event JSON",
    )
    trace_report.add_argument(
        "--mm1", type=float, default=None, metavar="LOAD",
        help="append the measured-histogram vs analytic M/M/1 comparison "
             "at this utilization (0 < LOAD < 1)",
    )
    trace_report.add_argument(
        "--critical-path", action="store_true",
        help="append per-stage critical-path attribution (self/wait/virtual "
             "time, exactly decomposing trace totals) and tail attribution",
    )
    trace_report.add_argument(
        "--tail-quantile", type=float, default=0.99, metavar="Q",
        help="tail quantile for --critical-path attribution (default 0.99)",
    )
    trace_report.add_argument(
        "--roofline", action="store_true",
        help="append roofline placement of traced kernels (measured "
             "operational intensity from span work counters)",
    )
    trace_report.set_defaults(func=_cmd_trace_report)

    fleet = sub.add_parser(
        "fleet-report",
        help="fleet health dashboard: rollups, SLO burn rates, autoscaler "
             "trajectory, and the trace-sampling bill",
    )
    fleet.add_argument(
        "path", nargs="?", default=None,
        help="JSONL span export to evaluate (default: run a seeded replay)",
    )
    fleet.add_argument("--queries", type=int, default=5_000,
                       help="replay arrival count (default 5000)")
    fleet.add_argument("--replicas", type=int, default=2)
    fleet.add_argument(
        "--policy", default="least-loaded",
        choices=("round-robin", "least-loaded", "power-of-two"),
    )
    fleet.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "diurnal", "bursty"),
    )
    fleet.add_argument("--rate", type=float, default=12.0,
                       help="arrival rate in queries/second (default 12)")
    fleet.add_argument("--service-mean", type=float, default=0.12,
                       help="mean service time in seconds (default 0.12)")
    fleet.add_argument(
        "--autoscale", action="store_true",
        help="enable the SLO autoscaler in replay mode (target = --e2e-slo)",
    )
    fleet.add_argument("--window", type=float, default=5.0,
                       help="rollup window width in virtual seconds")
    fleet.add_argument("--head-rate", type=float, default=0.1,
                       help="head sampling probability (default 0.1)")
    fleet.add_argument("--top-k", type=int, default=8,
                       help="slowest-trace reservoir size (default 8)")
    fleet.add_argument("--e2e-slo", type=float, default=2.5,
                       help="end-to-end p99 threshold in seconds")
    fleet.add_argument("--ttfp-slo", type=float, default=0.5,
                       help="time-to-first-partial p95 threshold in seconds")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--json", action="store_true",
        help="emit canonical JSON (sorted keys) instead of the dashboard",
    )
    fleet.add_argument(
        "--smoke", action="store_true",
        help="CI shape: <= 2000 arrivals, rebuild twice, exit 2 unless "
             "both renderings are byte-identical",
    )
    fleet.set_defaults(func=_cmd_fleet_report)

    cost = sub.add_parser(
        "cost-report",
        help="per-query joule/dollar ledger with the AI-tax decomposition "
             "and platform what-if repricing",
    )
    cost.add_argument(
        "path", nargs="?", default=None,
        help="JSONL span export to price (default: run a seeded replay)",
    )
    cost.add_argument(
        "--platform", default="cmp", choices=("cmp", "gpu", "phi", "fpga"),
        help="platform the headline ledger is priced on (default cmp)",
    )
    cost.add_argument(
        "--fleet", action="store_true",
        help="extrapolate to --target-queries per day: servers, joules, "
             "and dollars per platform",
    )
    cost.add_argument("--target-queries", type=int, default=1_000_000,
                      help="fleet extrapolation volume (default 1e6/day)")
    cost.add_argument("--queries", type=int, default=5_000,
                      help="replay arrival count (default 5000)")
    cost.add_argument("--replicas", type=int, default=2)
    cost.add_argument(
        "--policy", default="least-loaded",
        choices=("round-robin", "least-loaded", "power-of-two"),
    )
    cost.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "diurnal", "bursty"),
    )
    cost.add_argument("--rate", type=float, default=12.0,
                      help="arrival rate in queries/second (default 12)")
    cost.add_argument("--service-mean", type=float, default=0.12,
                      help="mean service time in seconds (default 0.12)")
    cost.add_argument(
        "--autoscale", action="store_true",
        help="enable the SLO autoscaler in replay mode (target = --e2e-slo)",
    )
    cost.add_argument("--e2e-slo", type=float, default=2.5,
                      help="autoscaler p99 target in seconds")
    cost.add_argument("--seed", type=int, default=0)
    cost.add_argument(
        "--json", action="store_true",
        help="emit canonical JSON (sorted keys) instead of the ledger",
    )
    cost.add_argument(
        "--smoke", action="store_true",
        help="CI shape: <= 2000 arrivals, rebuild twice, exit 2 unless "
             "both renderings are byte-identical",
    )
    cost.set_defaults(func=_cmd_cost_report)

    bench = sub.add_parser(
        "bench",
        help="run the pinned-seed benchmark registry / check the regression gate",
        description=(
            "repro bench [run|check|list]: run the registered benchmarks "
            "(schema-versioned BENCH_<tag>.json with counter totals and "
            "latency percentiles), or gate a run against a committed "
            "baseline.  Gated metrics are deterministic (counters, "
            "checksums, virtual latency) — wall clocks never decide the "
            "gate.  Compare like with like: a --quick baseline only gates "
            "--quick runs."
        ),
    )
    bench.add_argument(
        "action", nargs="?", choices=("run", "check", "list"), default="run",
        help="run benchmarks (default), check against a baseline, or list "
             "the registry",
    )
    bench.add_argument(
        "baseline", nargs="?", default=None,
        help="baseline JSON for the check action",
    )
    bench.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="shorthand: gate a fresh run (or --current) against BASELINE",
    )
    bench.add_argument(
        "--current", default=None, metavar="PATH",
        help="use an existing report JSON instead of re-running (check mode)",
    )
    bench.add_argument("--json", action="store_true",
                       help="also write the report JSON (see --out)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="report path for --json (default BENCH_<tag>.json)")
    bench.add_argument("--tag", default="pr5",
                       help="report tag; names the default output file")
    bench.add_argument("--quick", action="store_true",
                       help="small inputs / fewer queries (CI smoke)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="repeats per benchmark (min-of-k gate rule)")
    bench.add_argument("--filter", action="append", default=[],
                       metavar="SUBSTR",
                       help="only benchmarks whose name contains SUBSTR "
                            "(repeatable)")
    bench.set_defaults(func=_cmd_bench)

    design = sub.add_parser("design", help="print the datacenter design study")
    design.set_defaults(func=_cmd_design)

    wer = sub.add_parser("wer", help="ASR noise-robustness sweep")
    wer.add_argument("--noise", type=float, nargs="+",
                     default=[0.0, 0.05, 0.1, 0.2])
    wer.set_defaults(func=_cmd_wer)

    lint = sub.add_parser(
        "lint", help="run the statcheck static analyzer over the codebase"
    )
    from repro.statcheck.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import SiriusError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SiriusError as exc:
        print(f"error[{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. `repro lint | head`); exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
