"""Datacenter-level models: queueing, TCO, design-space search, scalability."""

from repro.datacenter.design import (
    CANDIDATE_SETS,
    DatacenterDesigner,
    DesignPoint,
    EFFICIENCY,
    LATENCY,
    OBJECTIVES,
    QUERY_SERVICES,
    TCO,
    WITH_FPGA,
    WITHOUT_FPGA,
    WITHOUT_FPGA_GPU,
)
from repro.datacenter.provisioning import (
    CapacityPlanner,
    ProvisioningPlan,
    WorkloadMix,
)
from repro.datacenter.queueing import (
    MM1Queue,
    improvement_curve,
    throughput_improvement_at_load,
)
from repro.datacenter.simulation import (
    ServingSimulationResult,
    SimulationResult,
    deterministic_sampler,
    empirical_sampler,
    exponential_sampler,
    live_service_sampler,
    simulate_queue,
    simulate_serving,
    validate_mm1,
)
from repro.datacenter.scalability import (
    PAPER_GAP,
    ScalabilityGap,
    measure_sirius_latency,
    measure_web_search_latency,
    paper_gap,
)
from repro.datacenter.tco import TCOBreakdown, TCOModel, TCOParameters

__all__ = [
    "CANDIDATE_SETS",
    "CapacityPlanner",
    "DatacenterDesigner",
    "ProvisioningPlan",
    "ServingSimulationResult",
    "SimulationResult",
    "WorkloadMix",
    "deterministic_sampler",
    "empirical_sampler",
    "exponential_sampler",
    "live_service_sampler",
    "simulate_queue",
    "simulate_serving",
    "validate_mm1",
    "DesignPoint",
    "EFFICIENCY",
    "LATENCY",
    "MM1Queue",
    "OBJECTIVES",
    "PAPER_GAP",
    "QUERY_SERVICES",
    "ScalabilityGap",
    "TCO",
    "TCOBreakdown",
    "TCOModel",
    "TCOParameters",
    "WITH_FPGA",
    "WITHOUT_FPGA",
    "WITHOUT_FPGA_GPU",
    "improvement_curve",
    "measure_sirius_latency",
    "measure_web_search_latency",
    "paper_gap",
    "throughput_improvement_at_load",
]
