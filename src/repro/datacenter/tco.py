"""Total cost of ownership model (paper Table 7, after Barroso et al.).

Monthly TCO per server =
    datacenter capex amortization  ($/W over the DC's depreciation life)
  + datacenter opex                ($/W-month)
  + server capex amortization     (price over the server's life)
  + server opex                   (fraction of capex per year)
  + energy                        (average power x PUE x electricity price)

Datacenter infrastructure is provisioned for *peak* power (TDP x PUE);
energy is billed on *average* power (utilization-scaled).  Normalized per
unit throughput, this yields the paper's Figure 18.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.spec import (
    CMP,
    DC_OPEX_PER_WATT_MONTH,
    DC_PRICE_PER_WATT,
    ELECTRICITY_COST_PER_KWH,
    server_price,
    server_watts,
)

HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class TCOParameters:
    """Table 7, verbatim (money/watt figures live in :mod:`platforms.spec`)."""

    dc_depreciation_years: float = 12.0
    server_depreciation_years: float = 3.0
    average_utilization: float = 0.45
    electricity_cost_per_kwh: float = ELECTRICITY_COST_PER_KWH
    dc_price_per_watt: float = DC_PRICE_PER_WATT
    dc_opex_per_watt_month: float = DC_OPEX_PER_WATT_MONTH
    server_opex_fraction_per_year: float = 0.05
    pue: float = 1.1

    def __post_init__(self) -> None:
        if not 0 < self.average_utilization <= 1:
            raise ConfigurationError("utilization must be in (0, 1]")
        if self.pue < 1:
            raise ConfigurationError("PUE cannot be below 1")


@dataclass(frozen=True)
class TCOBreakdown:
    """Monthly dollars per server, itemized."""

    dc_capex: float
    dc_opex: float
    server_capex: float
    server_opex: float
    energy: float

    @property
    def total(self) -> float:
        return (
            self.dc_capex + self.dc_opex + self.server_capex
            + self.server_opex + self.energy
        )


class TCOModel:
    """Computes per-server and per-throughput TCO across platforms."""

    def __init__(self, parameters: TCOParameters = TCOParameters()):
        self.parameters = parameters

    def server_breakdown(
        self, price: float, watts: float
    ) -> TCOBreakdown:
        """Monthly TCO of one server with the given price and TDP."""
        if price <= 0 or watts <= 0:
            raise ConfigurationError("price and watts must be positive")
        p = self.parameters
        peak_watts = watts * p.pue
        dc_capex = p.dc_price_per_watt * peak_watts / (p.dc_depreciation_years * 12.0)
        dc_opex = p.dc_opex_per_watt_month * peak_watts
        server_capex = price / (p.server_depreciation_years * 12.0)
        server_opex = price * p.server_opex_fraction_per_year / 12.0
        average_kw = watts * p.pue * p.average_utilization / 1000.0
        energy = average_kw * HOURS_PER_MONTH * p.electricity_cost_per_kwh
        return TCOBreakdown(dc_capex, dc_opex, server_capex, server_opex, energy)

    def platform_breakdown(self, platform: str) -> TCOBreakdown:
        """Monthly TCO of a server equipped with ``platform`` (Table 6 adders)."""
        return self.server_breakdown(server_price(platform), server_watts(platform))

    def monthly_tco(self, platform: str) -> float:
        return self.platform_breakdown(platform).total

    def cost_ratio(self, platform: str) -> float:
        """Accelerated server TCO relative to the baseline server."""
        return self.monthly_tco(platform) / self.monthly_tco(CMP)

    def normalized_tco(self, platform: str, throughput_improvement: float) -> float:
        """Figure 18's quantity: DC TCO per unit throughput, CMP = 1.0.

        A platform that costs ``r`` times the baseline server but serves
        ``t`` times the load needs r/t of the baseline's dollars.
        """
        if throughput_improvement <= 0:
            raise ConfigurationError("throughput improvement must be positive")
        return self.cost_ratio(platform) / throughput_improvement

    def tco_reduction(self, platform: str, throughput_improvement: float) -> float:
        """Convenience: how many times cheaper than the CMP datacenter."""
        return 1.0 / self.normalized_tco(platform, throughput_improvement)
