"""The scalability gap (paper Figures 1, 7a, and 21).

The gap is the ratio between an average IPA query's compute demand and an
average Web Search query's.  The paper measures 15 s vs 91 ms → 165x; our
Python pipeline measures its own pair of latencies and derives the same
ratio, then Figure 21 shows how accelerated datacenters shrink it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError

#: The paper's measured numbers, used as reference constants.
PAPER_WEB_SEARCH_LATENCY = 0.091   # seconds (Apache Nutch, Haswell)
PAPER_SIRIUS_LATENCY = 15.0        # seconds (average over 42 queries)
PAPER_GAP = 165.0                  # machines-scaling factor


@dataclass(frozen=True)
class ScalabilityGap:
    """Compute-demand ratio between IPA and Web Search queries."""

    web_search_latency: float
    ipa_latency: float

    def __post_init__(self) -> None:
        if self.web_search_latency <= 0 or self.ipa_latency <= 0:
            raise ConfigurationError("latencies must be positive")

    @property
    def gap(self) -> float:
        """Machines needed per machine of Web Search capacity (query parity)."""
        return self.ipa_latency / self.web_search_latency

    def machines_ratio(self, ipa_to_ws_query_ratio: float) -> float:
        """Figure 7a right panel: resource scaling vs the IPA query share.

        With IPA queries arriving at ``r`` times the Web Search rate, the
        datacenter must grow to ``1 + gap * r`` of its original size to hold
        throughput (the WS machines plus gap-many machines per IPA unit).
        """
        if ipa_to_ws_query_ratio < 0:
            raise ConfigurationError("query ratio must be >= 0")
        return 1.0 + self.gap * ipa_to_ws_query_ratio

    def bridged_gap(self, query_latency_improvement: float) -> float:
        """Figure 21: the residual gap after acceleration."""
        if query_latency_improvement <= 0:
            raise ConfigurationError("improvement must be positive")
        return self.gap / query_latency_improvement


def measure_web_search_latency(engine, queries: Sequence[str], repeats: int = 3) -> float:
    """Mean per-query latency of the search engine (the WS baseline)."""
    if not queries:
        raise ConfigurationError("need at least one query")
    start = time.perf_counter()
    count = 0
    for _ in range(repeats):
        for query in queries:
            engine.search(query)
            count += 1
    return (time.perf_counter() - start) / count


def measure_sirius_latency(pipeline, queries) -> float:
    """Mean per-query wall latency of the full Sirius pipeline."""
    if not queries:
        raise ConfigurationError("need at least one query")
    start = time.perf_counter()
    for query in queries:
        pipeline.process(query)
    return (time.perf_counter() - start) / len(queries)


def paper_gap() -> ScalabilityGap:
    """The paper's reference gap (15 s vs 91 ms ≈ 165x)."""
    return ScalabilityGap(PAPER_WEB_SEARCH_LATENCY, PAPER_SIRIUS_LATENCY)
