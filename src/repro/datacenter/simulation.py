"""Discrete-event queue simulation — the empirical check on Figure 17.

The paper models servers as M/M/1 queues analytically.  This simulator
generates Poisson arrivals and serves them through c parallel servers
(c=1 for an accelerated server, c=4 for the baseline's query-parallel
cores), measuring response times directly, so the analytic model's
predictions (and its convergence claims) can be validated empirically —
including with *measured* Sirius latency distributions instead of the
exponential assumption.

Two measured modes exist: :func:`empirical_sampler` replays a recorded
latency sample, and :func:`simulate_serving` /
:func:`live_service_sampler` go further — every simulated arrival is
serviced by a *real* serving-layer entry point (``pipeline.process`` or a
:class:`repro.serving.Service`), so the queueing conclusions are checked
against the implementation itself rather than any recorded distribution.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import ConfigurationError, SiriusError


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate statistics from one simulation run."""

    n_completed: int
    mean_response_time: float
    p95_response_time: float
    mean_waiting_time: float
    utilization: float
    p99_response_time: float = 0.0

    @property
    def throughput_ok(self) -> bool:
        return self.n_completed > 0


@dataclass(frozen=True)
class ServingSimulationResult(SimulationResult):
    """Queue statistics plus per-arrival serving outcomes under faults.

    Produced by :func:`simulate_serving` with ``classify_outcomes=True``:
    each simulated arrival's response is classed as *ok* (full quality),
    *degraded* (served, but a QA/IMM branch failed), or *failed* (a fatal
    service failed, or the call raised).  Outcome counts cover the whole
    arrival stream — availability is a correctness property, so no warmup
    fraction is discarded from it (queueing statistics still are).
    """

    n_ok: int = 0
    n_degraded: int = 0
    n_failed: int = 0

    @property
    def n_arrivals(self) -> int:
        return self.n_ok + self.n_degraded + self.n_failed

    @property
    def availability(self) -> float:
        """Fraction of arrivals that got *an* answer (ok or degraded)."""
        total = self.n_arrivals
        return (self.n_ok + self.n_degraded) / total if total else 0.0

    @property
    def goodput(self) -> float:
        """Fraction of arrivals served at full quality."""
        total = self.n_arrivals
        return self.n_ok / total if total else 0.0


def exponential_sampler(mean: float, seed: int = 0) -> Callable[[], float]:
    """Service-time sampler for the M (exponential) assumption."""
    if mean <= 0:
        raise ConfigurationError("mean service time must be positive")
    rng = random.Random(seed)
    return lambda: rng.expovariate(1.0 / mean)


def deterministic_sampler(value: float) -> Callable[[], float]:
    """Service-time sampler for an M/D/c run."""
    if value <= 0:
        raise ConfigurationError("service time must be positive")
    return lambda: value


def empirical_sampler(samples: Sequence[float], seed: int = 0) -> Callable[[], float]:
    """Sampler drawing from measured latencies (e.g. real Sirius queries)."""
    if not samples:
        raise ConfigurationError("need at least one sample")
    if min(samples) <= 0:
        raise ConfigurationError("latency samples must be positive")
    rng = random.Random(seed)
    pool = list(samples)
    return lambda: rng.choice(pool)


def live_service_sampler(
    process_fn: Callable[..., object],
    queries: Sequence,
    seed: int = 0,
) -> Callable[[], float]:
    """Service-time sampler that *executes* a real query per arrival.

    ``process_fn`` is any real serving entry point — ``pipeline.process``,
    ``PlanExecutor.run``, or a single :class:`repro.serving.Service` — and
    each draw runs one query (chosen uniformly from ``queries``) through
    it, returning the measured wall latency.  This replaces the
    exponential-service *assumption* of the M/M/1 analysis with the actual
    latency process of the implementation.
    """
    if not queries:
        raise ConfigurationError("need at least one query")
    rng = random.Random(seed)
    pool = list(queries)
    clock = time.perf_counter

    def sample() -> float:
        start = clock()
        process_fn(rng.choice(pool))
        return clock() - start

    return sample


def simulate_serving(
    process_fn: Callable[..., object],
    queries: Sequence,
    arrival_rate: float,
    n_servers: int = 1,
    n_queries: int = 100,
    seed: int = 42,
    warmup_fraction: float = 0.1,
    classify_outcomes: bool = False,
) -> SimulationResult:
    """Queue simulation whose arrivals are serviced by *real* services.

    Every simulated arrival runs one real query through ``process_fn`` and
    uses its measured latency as that arrival's service time, so the
    empirical queueing checks (Figure 17's convergence claims) run against
    measured rather than assumed distributions.  Keep ``n_queries`` modest:
    each one is a genuine end-to-end query execution.

    With ``classify_outcomes=True`` — the degraded-mode arrival path for
    resilient serving under fault injection — each arrival's response is
    additionally classed as ok / degraded / failed (a response whose
    ``failed`` property is true, or a :class:`~repro.errors.SiriusError`
    raised by ``process_fn``, counts as failed) and a
    :class:`ServingSimulationResult` carrying availability and goodput is
    returned.  Pair ``process_fn`` with a resilient executor's
    ``run(query, on_error="degrade")`` so fatal failures surface as failed
    responses, not stream-aborting exceptions.
    """
    if not classify_outcomes:
        return simulate_queue(
            arrival_rate,
            live_service_sampler(process_fn, queries, seed=seed + 1),
            n_servers=n_servers,
            n_queries=n_queries,
            seed=seed,
            warmup_fraction=warmup_fraction,
        )

    if not queries:
        raise ConfigurationError("need at least one query")
    rng = random.Random(seed + 1)
    pool = list(queries)
    clock = time.perf_counter
    outcomes = {"ok": 0, "degraded": 0, "failed": 0}

    def sample() -> float:
        start = clock()
        try:
            response = process_fn(rng.choice(pool))
        except SiriusError:
            outcomes["failed"] += 1
            return max(clock() - start, 1e-9)
        if getattr(response, "failed", False):
            outcomes["failed"] += 1
        elif getattr(response, "degraded", False):
            outcomes["degraded"] += 1
        else:
            outcomes["ok"] += 1
        # Injected virtual latency counts like real latency.
        virtual = getattr(response, "wall_seconds", 0.0)
        measured = clock() - start
        return max(virtual, measured, 1e-9)

    base = simulate_queue(
        arrival_rate,
        sample,
        n_servers=n_servers,
        n_queries=n_queries,
        seed=seed,
        warmup_fraction=warmup_fraction,
    )
    return ServingSimulationResult(
        n_completed=base.n_completed,
        mean_response_time=base.mean_response_time,
        p95_response_time=base.p95_response_time,
        mean_waiting_time=base.mean_waiting_time,
        utilization=base.utilization,
        p99_response_time=base.p99_response_time,
        n_ok=outcomes["ok"],
        n_degraded=outcomes["degraded"],
        n_failed=outcomes["failed"],
    )


def simulate_queue(
    arrival_rate: float,
    service_sampler: Callable[[], float],
    n_servers: int = 1,
    n_queries: int = 5000,
    seed: int = 42,
    warmup_fraction: float = 0.1,
) -> SimulationResult:
    """Simulate a FIFO G/G/c queue and report response-time statistics.

    Arrivals are Poisson at ``arrival_rate``; service times come from
    ``service_sampler``; ``n_servers`` serve in parallel from one queue.
    The first ``warmup_fraction`` of completions is discarded.
    """
    if arrival_rate <= 0:
        raise ConfigurationError("arrival rate must be positive")
    if n_servers < 1 or n_queries < 10:
        raise ConfigurationError("need n_servers >= 1 and n_queries >= 10")

    rng = random.Random(seed)
    # Pre-draw arrivals.
    arrivals: List[float] = []
    clock = 0.0
    for _ in range(n_queries):
        clock += rng.expovariate(arrival_rate)
        arrivals.append(clock)

    # server_free[i] = time server i becomes idle (min-heap).
    server_free = [0.0] * n_servers
    heapq.heapify(server_free)
    response_times: List[float] = []
    waiting_times: List[float] = []
    busy_time = 0.0
    for arrival in arrivals:
        free_at = heapq.heappop(server_free)
        start = max(arrival, free_at)
        service = service_sampler()
        finish = start + service
        heapq.heappush(server_free, finish)
        response_times.append(finish - arrival)
        waiting_times.append(start - arrival)
        busy_time += service

    cutoff = int(len(response_times) * warmup_fraction)
    kept = response_times[cutoff:]
    kept_wait = waiting_times[cutoff:]
    horizon = max(server_free) if server_free else 1.0
    kept_sorted = sorted(kept)
    p95 = kept_sorted[min(int(0.95 * len(kept_sorted)), len(kept_sorted) - 1)]
    p99 = kept_sorted[min(int(0.99 * len(kept_sorted)), len(kept_sorted) - 1)]
    return SimulationResult(
        n_completed=len(kept),
        mean_response_time=sum(kept) / len(kept),
        p95_response_time=p95,
        mean_waiting_time=sum(kept_wait) / len(kept_wait),
        utilization=min(busy_time / (n_servers * horizon), 1.0),
        p99_response_time=p99,
    )


def histogram_sampler(histogram, seed: int = 0) -> Callable[[], float]:
    """Service-time sampler over a measured latency histogram.

    ``histogram`` is anything exposing raw ``samples`` — a live
    :class:`repro.obs.metrics.Histogram` or a picklable
    :class:`repro.obs.metrics.HistogramSnapshot` from a trace report —
    so measured serving distributions plug straight into the queue model.
    Repeated observations carried as reservoir ``weights`` keep their
    multiplicity (draws are weight-proportional).  Non-positive samples
    (degenerately fast stubbed services) are clamped to a nanosecond: a
    zero service time would break utilization math.
    """
    samples = [max(value, 1e-9) for value in histogram.samples]
    weights = list(getattr(histogram, "weights", ()) or ())
    if weights and any(weight != 1 for weight in weights):
        if not samples:
            raise ConfigurationError("need at least one sample")
        rng = random.Random(seed)
        return lambda: rng.choices(samples, weights=weights, k=1)[0]
    return empirical_sampler(samples, seed=seed)


def simulate_from_histogram(
    histogram,
    load: float,
    n_queries: int = 5000,
    seed: int = 42,
    n_servers: int = 1,
    warmup_fraction: float = 0.1,
) -> SimulationResult:
    """Queue simulation fed by a *measured* latency histogram (Fig 8 → 17).

    The arrival rate is set so a single server would sit at utilization
    ``load`` given the histogram's measured mean — the same
    parameterization as the analytic M/M/1 curve, but with service times
    drawn from the real distribution instead of the exponential
    assumption.  Compare against :func:`mm1_percentile`.
    """
    if not 0 < load < 1:
        raise ConfigurationError("load must be in (0, 1)")
    samples = list(histogram.samples)
    if not samples:
        raise ConfigurationError("histogram has no samples to simulate from")
    weights = list(getattr(histogram, "weights", ()) or ()) or [1] * len(samples)
    population = sum(weights)
    mean = max(
        math.fsum(value * weight for value, weight in zip(samples, weights))
        / population,
        1e-9,
    )
    return simulate_queue(
        arrival_rate=load / (mean * n_servers),
        service_sampler=histogram_sampler(histogram, seed=seed + 1),
        n_servers=n_servers,
        n_queries=n_queries,
        seed=seed,
        warmup_fraction=warmup_fraction,
    )


def mm1_percentile(mean_service: float, load: float, p: float) -> float:
    """Analytic M/M/1 response-time percentile.

    Response time in an M/M/1 queue is exponential with mean
    ``T = s / (1 - rho)``, so the ``p``-th percentile is
    ``-T * ln(1 - p/100)`` — the closed form the measured-histogram
    simulation is compared against in ``repro trace-report --mm1``.
    """
    if mean_service <= 0:
        raise ConfigurationError("mean service time must be positive")
    if not 0 < load < 1:
        raise ConfigurationError("load must be in (0, 1)")
    if not 0 <= p < 100:
        raise ConfigurationError("percentile must be in [0, 100)")
    mean_response = mean_service / (1.0 - load)
    return -mean_response * math.log(1.0 - p / 100.0)


def validate_mm1(
    service_time: float,
    load: float,
    n_queries: int = 20000,
    seed: int = 7,
) -> tuple:
    """(simulated, analytic) mean response time for one M/M/1 point."""
    if not 0 < load < 1:
        raise ConfigurationError("load must be in (0, 1)")
    arrival_rate = load / service_time
    result = simulate_queue(
        arrival_rate,
        exponential_sampler(service_time, seed=seed + 1),
        n_servers=1,
        n_queries=n_queries,
        seed=seed,
    )
    analytic = service_time / (1.0 - load)
    return result.mean_response_time, analytic
