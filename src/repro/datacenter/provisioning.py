"""Capacity planning over a query mix, including power-capped designs.

The paper's Section 5 treats services independently; a real deployment sees
a *mix* of VC/VQ/VIQ queries.  This module sizes a datacenter for a mix:
how many accelerated servers sustain a target query rate, what they cost
(via the TCO model), how much power they draw, and — for the paper's
"augmenting existing filled datacenters that are equipped with capped power
infrastructure" scenario — which platform serves the most load under a hard
power budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.datacenter.design import QUERY_SERVICES
from repro.datacenter.tco import TCOModel
from repro.errors import DesignError
from repro.platforms.model import AcceleratorModel, BASELINE_CORES
from repro.platforms.spec import CMP, PLATFORMS, server_watts


@dataclass(frozen=True)
class WorkloadMix:
    """Fractions of each query type in the arriving stream."""

    vc: float = 0.5
    vq: float = 0.35
    viq: float = 0.15

    def __post_init__(self) -> None:
        total = self.vc + self.vq + self.viq
        if not 0.99 <= total <= 1.01:
            raise DesignError(f"mix fractions sum to {total}, not 1")
        if min(self.vc, self.vq, self.viq) < 0:
            raise DesignError("mix fractions must be non-negative")

    def fraction(self, query_type: str) -> float:
        return {"VC": self.vc, "VQ": self.vq, "VIQ": self.viq}[query_type]


@dataclass(frozen=True)
class ProvisioningPlan:
    """Capacity plan for one platform at one target load."""

    platform: str
    queries_per_second: float
    mean_service_time: float  # seconds of server time per query
    n_servers: int
    total_watts: float
    monthly_cost: float

    @property
    def cost_per_qps(self) -> float:
        return self.monthly_cost / self.queries_per_second


class CapacityPlanner:
    """Sizes datacenters for a workload mix across platform choices."""

    def __init__(
        self,
        model: Optional[AcceleratorModel] = None,
        tco_model: Optional[TCOModel] = None,
        asr_variant: str = "ASR (GMM)",
        headroom: float = 0.45,
    ):
        if not 0 < headroom <= 1:
            raise DesignError("headroom (target utilization) must be in (0, 1]")
        self.model = model if model is not None else AcceleratorModel()
        self.tco = tco_model if tco_model is not None else TCOModel()
        self.asr_variant = asr_variant
        self.headroom = headroom  # target server utilization (Table 7: 45%)

    # -- per-query demand -------------------------------------------------------

    def query_service_time(self, query_type: str, platform: str) -> float:
        """Server seconds consumed by one query of ``query_type``.

        The CMP datacenter is the paper's baseline: each of the four cores
        serves an independent query at single-core latency (query-level
        parallelism), so CMP uses the baseline latency while accelerated
        platforms use their accelerated latency on one stream.
        """
        total = 0.0
        for service in QUERY_SERVICES[query_type]:
            name = self.asr_variant if service == "ASR" else service
            if platform == CMP:
                total += self.model.baseline_latency[name]
            else:
                total += self.model.latency(name, platform)
        return total

    def mean_service_time(self, mix: WorkloadMix, platform: str) -> float:
        return sum(
            mix.fraction(query_type) * self.query_service_time(query_type, platform)
            for query_type in QUERY_SERVICES
        )

    # -- sizing --------------------------------------------------------------------

    def server_capacity_qps(self, mix: WorkloadMix, platform: str) -> float:
        """Sustainable queries/second per server at the target utilization.

        The baseline CMP server runs queries on its four cores in parallel;
        accelerated servers serve one accelerated stream.
        """
        service_time = self.mean_service_time(mix, platform)
        streams = BASELINE_CORES if platform == CMP else 1
        return streams * self.headroom / service_time

    def plan(
        self, mix: WorkloadMix, queries_per_second: float, platform: str
    ) -> ProvisioningPlan:
        """Provision ``platform`` servers for the target arrival rate."""
        if queries_per_second <= 0:
            raise DesignError("queries_per_second must be positive")
        capacity = self.server_capacity_qps(mix, platform)
        n_servers = max(int(math.ceil(queries_per_second / capacity)), 1)
        watts = n_servers * server_watts(platform)
        monthly = n_servers * self.tco.monthly_tco(platform)
        return ProvisioningPlan(
            platform=platform,
            queries_per_second=queries_per_second,
            mean_service_time=self.mean_service_time(mix, platform),
            n_servers=n_servers,
            total_watts=watts,
            monthly_cost=monthly,
        )

    def cheapest_platform(
        self, mix: WorkloadMix, queries_per_second: float
    ) -> ProvisioningPlan:
        plans = [
            self.plan(mix, queries_per_second, platform) for platform in PLATFORMS
        ]
        return min(plans, key=lambda plan: plan.monthly_cost)

    # -- power-capped design ----------------------------------------------------------

    def max_load_under_power_cap(
        self, mix: WorkloadMix, power_budget_watts: float, platform: str
    ) -> float:
        """Highest sustainable qps for ``platform`` within the power budget."""
        if power_budget_watts <= 0:
            raise DesignError("power budget must be positive")
        n_servers = int(power_budget_watts // server_watts(platform))
        return n_servers * self.server_capacity_qps(mix, platform)

    # -- partitioned (heterogeneous) provisioning ---------------------------------

    def service_demand(self, mix: WorkloadMix, queries_per_second: float) -> Dict[str, float]:
        """Baseline-normalized demand: queries/second hitting each service."""
        demand: Dict[str, float] = {}
        for query_type, services in QUERY_SERVICES.items():
            rate = queries_per_second * mix.fraction(query_type)
            for service in services:
                name = self.asr_variant if service == "ASR" else service
                demand[name] = demand.get(name, 0.0) + rate
        return demand

    def _service_pool(
        self, service: str, rate: float, platform: str
    ) -> Tuple[int, float]:
        """(servers, monthly cost) for one service pool on one platform."""
        if platform == CMP:
            latency = self.model.baseline_latency[service]
            streams = BASELINE_CORES
        else:
            latency = self.model.latency(service, platform)
            streams = 1
        capacity = streams * self.headroom / latency
        n_servers = max(int(math.ceil(rate / capacity)), 1)
        return n_servers, n_servers * self.tco.monthly_tco(platform)

    def partitioned_plan(
        self, mix: WorkloadMix, queries_per_second: float
    ) -> Dict[str, Dict[str, float]]:
        """Per-service platform choice for a partitioned datacenter.

        Returns ``{service: {"platform", "servers", "monthly_cost"}}`` —
        each service pool independently picks its cheapest platform, the
        paper's Table 9 strategy applied to capacity planning.
        """
        if queries_per_second <= 0:
            raise DesignError("queries_per_second must be positive")
        plan: Dict[str, Dict[str, float]] = {}
        for service, rate in self.service_demand(mix, queries_per_second).items():
            best = None
            for platform in PLATFORMS:
                n_servers, cost = self._service_pool(service, rate, platform)
                if best is None or cost < best[2]:
                    best = (platform, n_servers, cost)
            plan[service] = {
                "platform": best[0],
                "servers": best[1],
                "monthly_cost": best[2],
            }
        return plan

    def partitioned_monthly_cost(
        self, mix: WorkloadMix, queries_per_second: float
    ) -> float:
        plan = self.partitioned_plan(mix, queries_per_second)
        return sum(pool["monthly_cost"] for pool in plan.values())

    def power_capped_design(
        self, mix: WorkloadMix, power_budget_watts: float
    ) -> Tuple[str, float]:
        """(platform, qps) maximizing served load under the power cap.

        The paper's observation to reproduce: the FPGA's performance/watt
        makes it the choice "for augmenting existing filled datacenters that
        are equipped with capped power infrastructure support".
        """
        best_platform = None
        best_load = -1.0
        for platform in PLATFORMS:
            load = self.max_load_under_power_cap(mix, power_budget_watts, platform)
            if load > best_load:
                best_platform, best_load = platform, load
        if best_platform is None:
            raise DesignError("no platform fits the power budget")
        return best_platform, best_load
