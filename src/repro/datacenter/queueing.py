"""M/M/1 queueing model for server load analysis (paper Figure 17).

Each server (or core) is modeled as an M/M/1 queue: Poisson arrivals at rate
λ, exponential service at rate μ.  Mean response time T = 1/(μ - λ).  The
paper's Figure 17 asks: holding response time at the *baseline* server's
level for a given load, how much more load can an accelerated server absorb?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue parameterized by its mean service time (seconds)."""

    service_time: float

    def __post_init__(self) -> None:
        if self.service_time <= 0:
            raise ConfigurationError("service time must be positive")

    @property
    def service_rate(self) -> float:
        return 1.0 / self.service_time

    def utilization(self, arrival_rate: float) -> float:
        return arrival_rate * self.service_time

    def response_time(self, arrival_rate: float) -> float:
        """Mean time in system; infinite at or beyond saturation."""
        if arrival_rate < 0:
            raise ConfigurationError("arrival rate must be >= 0")
        if arrival_rate >= self.service_rate:
            return float("inf")
        return 1.0 / (self.service_rate - arrival_rate)

    def waiting_time(self, arrival_rate: float) -> float:
        return self.response_time(arrival_rate) - self.service_time

    def queue_length(self, arrival_rate: float) -> float:
        """Mean number in system (Little's law)."""
        return arrival_rate * self.response_time(arrival_rate)

    def max_load_for_response_time(self, target: float) -> float:
        """Largest arrival rate keeping mean response time <= ``target``."""
        if target < self.service_time:
            return 0.0
        return self.service_rate - 1.0 / target


def throughput_improvement_at_load(
    speedup: float,
    load: float,
    baseline_cores: int = 4,
) -> float:
    """Figure 17's quantity for one (platform, service, load) point.

    The baseline server runs ``baseline_cores`` M/M/1 queues (query-level
    parallelism), each at utilization ``load``; its mean response time sets
    the latency target.  The accelerated server is one M/M/1 queue with
    service time reduced by ``speedup``; we report how much more total load
    it absorbs at the same response-time target.

    At load -> 1 this converges to speedup / baseline_cores (Figure 16's
    bound); at low load it is far larger — matching the paper's observation
    that medium-to-low-load datacenters benefit the most.
    """
    if not 0 < load < 1:
        raise ConfigurationError("load must be in (0, 1)")
    if speedup <= 0:
        raise ConfigurationError("speedup must be positive")
    baseline = MM1Queue(service_time=1.0)
    target = baseline.response_time(arrival_rate=load)
    accelerated = MM1Queue(service_time=1.0 / speedup)
    absorbed = accelerated.max_load_for_response_time(target)
    baseline_total = baseline_cores * load
    return absorbed / baseline_total


def improvement_curve(
    speedup: float,
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    baseline_cores: int = 4,
) -> List[float]:
    """Figure 17 series: improvement at each load level (darker = higher)."""
    return [
        throughput_improvement_at_load(speedup, load, baseline_cores)
        for load in loads
    ]
