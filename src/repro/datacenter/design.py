"""Datacenter design-space search (paper Tables 8/9, Figures 19/20).

Three first-order objectives, each optionally under a latency constraint
(the CMP sub-query latency, as in the paper):

- ``latency``: minimize query latency;
- ``tco``: minimize TCO per unit throughput;
- ``efficiency``: maximize performance per watt.

Candidate sets mirror the paper's columns: all platforms, without FPGA, and
without FPGA or GPU.  Homogeneous designs pick one platform for every
service; partitioned (heterogeneous) designs pick per service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datacenter.tco import TCOModel
from repro.errors import DesignError
from repro.platforms.model import AcceleratorModel
from repro.platforms.spec import CMP, FPGA, GPU, PHI, PLATFORMS

#: Candidate sets (paper Table 8/9 column groups).
WITH_FPGA = (CMP, GPU, PHI, FPGA)
WITHOUT_FPGA = (CMP, GPU, PHI)
WITHOUT_FPGA_GPU = (CMP, PHI)
CANDIDATE_SETS: Dict[str, Tuple[str, ...]] = {
    "with FPGA": WITH_FPGA,
    "without FPGA": WITHOUT_FPGA,
    "without FPGA/GPU": WITHOUT_FPGA_GPU,
}

LATENCY = "latency"
TCO = "tco"
EFFICIENCY = "efficiency"
OBJECTIVES = (LATENCY, TCO, EFFICIENCY)

#: Query-type service composition (Table 1).
QUERY_SERVICES: Dict[str, Tuple[str, ...]] = {
    "VC": ("ASR",),
    "VQ": ("ASR", "QA"),
    "VIQ": ("ASR", "QA", "IMM"),
}


@dataclass(frozen=True)
class DesignPoint:
    """One (service, platform) evaluation — a point in Figure 19."""

    service: str
    platform: str
    latency: float
    latency_improvement: float
    throughput_improvement: float
    normalized_tco: float
    tco_improvement: float
    performance_per_watt: float


class DatacenterDesigner:
    """Evaluates platforms per service and picks designs per objective."""

    def __init__(
        self,
        model: Optional[AcceleratorModel] = None,
        tco_model: Optional[TCOModel] = None,
    ):
        self.model = model if model is not None else AcceleratorModel()
        self.tco_model = tco_model if tco_model is not None else TCOModel()

    # -- point evaluation -----------------------------------------------------

    def evaluate(self, service: str, platform: str) -> DesignPoint:
        latency = self.model.latency(service, platform)
        throughput = self.model.throughput_improvement(service, platform)
        normalized = self.tco_model.normalized_tco(platform, throughput)
        return DesignPoint(
            service=service,
            platform=platform,
            latency=latency,
            latency_improvement=self.model.baseline_latency[service] / latency,
            throughput_improvement=throughput,
            normalized_tco=normalized,
            tco_improvement=1.0 / normalized,
            performance_per_watt=self.model.performance_per_watt(service, platform),
        )

    def all_points(
        self, candidates: Sequence[str] = PLATFORMS
    ) -> List[DesignPoint]:
        """Every (service, platform) point — the Figure 19 scatter."""
        return [
            self.evaluate(service, platform)
            for service in self.model.baseline_latency
            for platform in candidates
        ]

    def _latency_constraint(self, service: str) -> float:
        """The paper's constraint: CMP (sub-query) latency."""
        return self.model.latency(service, CMP)

    # -- per-service selection ---------------------------------------------------

    def best_platform(
        self,
        service: str,
        objective: str,
        candidates: Sequence[str],
        latency_constrained: bool = True,
    ) -> DesignPoint:
        """The winning platform for one service under one objective."""
        if objective not in OBJECTIVES:
            raise DesignError(f"unknown objective {objective!r}")
        points = [self.evaluate(service, platform) for platform in candidates]
        if objective != LATENCY and latency_constrained:
            limit = self._latency_constraint(service)
            feasible = [p for p in points if p.latency <= limit * (1 + 1e-9)]
            if not feasible:
                raise DesignError(
                    f"no candidate meets the latency constraint for {service}"
                )
            points = feasible
        if objective == LATENCY:
            return min(points, key=lambda p: p.latency)
        if objective == TCO:
            return min(points, key=lambda p: p.normalized_tco)
        return max(points, key=lambda p: p.performance_per_watt)

    # -- homogeneous (Table 8) ------------------------------------------------------

    def homogeneous_choice(
        self, objective: str, candidates: Sequence[str]
    ) -> str:
        """One platform for *all* services, best on the aggregate objective."""
        scores: Dict[str, float] = {}
        for platform in candidates:
            points = [
                self.evaluate(service, platform)
                for service in self.model.baseline_latency
            ]
            if objective != LATENCY:
                feasible = all(
                    p.latency <= self._latency_constraint(p.service) * (1 + 1e-9)
                    for p in points
                )
                if not feasible:
                    continue
            if objective == LATENCY:
                scores[platform] = sum(p.latency for p in points)
            elif objective == TCO:
                scores[platform] = sum(p.normalized_tco for p in points)
            else:
                scores[platform] = -sum(p.performance_per_watt for p in points)
        if not scores:
            raise DesignError("no homogeneous candidate meets all constraints")
        return min(scores, key=scores.get)

    def homogeneous_table(self) -> Dict[str, Dict[str, str]]:
        """Table 8: objective -> candidate-set name -> chosen platform."""
        return {
            objective: {
                name: self.homogeneous_choice(objective, candidates)
                for name, candidates in CANDIDATE_SETS.items()
            }
            for objective in OBJECTIVES
        }

    # -- heterogeneous / partitioned (Table 9) ------------------------------------------

    def heterogeneous_table(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Table 9: objective -> candidate set -> service -> choice + gain.

        The gain is the improvement on the objective metric relative to the
        homogeneous design for the same objective and candidate set.
        """
        table: Dict[str, Dict[str, Dict[str, object]]] = {}
        for objective in OBJECTIVES:
            table[objective] = {}
            for name, candidates in CANDIDATE_SETS.items():
                homogeneous = self.homogeneous_choice(objective, candidates)
                per_service: Dict[str, object] = {}
                for service in self.model.baseline_latency:
                    best = self.best_platform(service, objective, candidates)
                    base = self.evaluate(service, homogeneous)
                    if objective == LATENCY:
                        gain = base.latency / best.latency
                    elif objective == TCO:
                        gain = base.normalized_tco / best.normalized_tco
                    else:
                        gain = best.performance_per_watt / base.performance_per_watt
                    per_service[service] = {
                        "platform": best.platform,
                        "gain": gain,
                        "homogeneous": homogeneous,
                    }
                table[objective][name] = per_service
        return table

    # -- query-level (Figure 20) ---------------------------------------------------------

    def query_latency(
        self, query_type: str, platform: str, asr_variant: str = "ASR (GMM)"
    ) -> float:
        """End-to-end query latency summing its services' latencies."""
        if query_type not in QUERY_SERVICES:
            raise DesignError(f"unknown query type {query_type!r}")
        total = 0.0
        for service in QUERY_SERVICES[query_type]:
            name = asr_variant if service == "ASR" else service
            total += self.model.latency(name, platform)
        return total

    def query_baseline_latency(
        self, query_type: str, asr_variant: str = "ASR (GMM)"
    ) -> float:
        total = 0.0
        for service in QUERY_SERVICES[query_type]:
            name = asr_variant if service == "ASR" else service
            total += self.model.baseline_latency[name]
        return total

    def query_level_summary(
        self, platform: str, asr_variant: str = "ASR (GMM)"
    ) -> Dict[str, Dict[str, float]]:
        """Figure 20 rows for one accelerated datacenter."""
        summary: Dict[str, Dict[str, float]] = {}
        for query_type, services in QUERY_SERVICES.items():
            base = self.query_baseline_latency(query_type, asr_variant)
            accelerated = self.query_latency(query_type, platform, asr_variant)
            improvement = base / accelerated
            throughput = improvement / 4.0  # vs 4-core query-parallel baseline
            names = [asr_variant if s == "ASR" else s for s in services]
            perf_watt = sum(
                self.model.performance_per_watt(name, platform) for name in names
            ) / len(names)
            summary[query_type] = {
                "latency_improvement": improvement,
                "tco_improvement": self.tco_model.tco_reduction(platform, throughput),
                "performance_per_watt": perf_watt,
            }
        return summary

    def average_query_latency_improvement(
        self, platform: str, asr_variant: str = "ASR (GMM)"
    ) -> float:
        summary = self.query_level_summary(platform, asr_variant)
        values = [row["latency_improvement"] for row in summary.values()]
        return sum(values) / len(values)
