"""The end-to-end Sirius pipeline (paper Figure 2).

Life of a query: audio → ASR → Query Classifier → (action back to device) or
(QA over the search corpus); an attached image additionally runs IMM.  Every
service records wall time, so the same object drives the latency studies
(Figures 7/8) and the cycle-breakdown analysis (Figure 9).

Since the serving-layer refactor this class is a thin facade: query
execution lives in :mod:`repro.serving` (Service wrappers, query-plan DAGs,
execution backends), and :meth:`process` / :meth:`process_all` delegate to a
lazily built :class:`~repro.serving.executor.PlanExecutor` while preserving
the original observable behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.asr import (
    BigramLanguageModel,
    Decoder,
    collect_training_data,
    train_dnn_acoustic_model,
    train_gmm_acoustic_model,
)
from repro.core.classifier import QueryClassifier
from repro.core.inputset import all_sentences
from repro.profiling import Profiler
from repro.core.query import IPAQuery, SiriusResponse
from repro.errors import ConfigurationError
from repro.imm.database import ImageDatabase
from repro.imm.image import SceneGenerator
from repro.qa import QAEngine

#: Supported acoustic back-ends (paper: Sphinx GMM vs. Kaldi/RASR DNN).
GMM_BACKEND = "gmm"
DNN_BACKEND = "dnn"


@dataclass
class SiriusPipeline:
    """A fully assembled IPA server.

    Use :meth:`build` for the standard construction (trains the acoustic
    model on the input-set sentences, indexes the default corpus and scene
    database); pass components explicitly for custom setups.
    """

    decoder: Decoder
    classifier: QueryClassifier
    qa_engine: QAEngine
    image_database: ImageDatabase
    asr_backend: str = GMM_BACKEND
    #: Run QA and IMM concurrently for voice-image queries (the Lucida-style
    #: service-parallel execution; numpy releases the GIL in IMM's hot loops).
    parallel_services: bool = False
    #: Cached serving-layer executor plus the component identities it wraps
    #: (rebuilt when a component is swapped on a live pipeline).
    _serving: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _serving_key: Tuple[int, ...] = field(
        default=(), init=False, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        asr_backend: str = GMM_BACKEND,
        training_sentences: Optional[List[str]] = None,
        training_repetitions: int = 3,
        n_scenes: int = 10,
        scene_generator: Optional[SceneGenerator] = None,
        qa_engine: Optional[QAEngine] = None,
    ) -> "SiriusPipeline":
        """Assemble and train all services."""
        if asr_backend not in (GMM_BACKEND, DNN_BACKEND):
            raise ConfigurationError(f"unknown ASR backend: {asr_backend!r}")
        sentences = (
            list(training_sentences) if training_sentences is not None else all_sentences()
        )
        data = collect_training_data(sentences, repetitions=training_repetitions)
        if asr_backend == GMM_BACKEND:
            acoustic_model = train_gmm_acoustic_model(data)
        else:
            acoustic_model = train_dnn_acoustic_model(data)
        language_model = BigramLanguageModel(sentences)
        decoder = Decoder(acoustic_model, language_model)
        generator = scene_generator if scene_generator is not None else SceneGenerator()
        database = ImageDatabase.with_scenes(n_scenes, generator=generator)
        return cls(
            decoder=decoder,
            classifier=QueryClassifier(),
            qa_engine=qa_engine if qa_engine is not None else QAEngine(),
            image_database=database,
            asr_backend=asr_backend,
        )

    # -- query processing ----------------------------------------------------------

    @property
    def serving(self):
        """The serving-layer executor wrapping this pipeline's components.

        Built lazily (and imported lazily: ``repro.serving`` imports the
        query model from this package, so a module-level import here would
        be circular) and rebuilt if a component is swapped afterwards.
        """
        from repro.serving import build_executor

        key = (
            id(self.decoder),
            id(self.classifier),
            id(self.qa_engine),
            id(self.image_database),
        )
        if self._serving is None or self._serving_key != key:
            self._serving = build_executor(
                self.decoder, self.classifier, self.qa_engine, self.image_database
            )
            self._serving_key = key
        return self._serving

    def process(self, query: IPAQuery, profiler: Optional[Profiler] = None) -> SiriusResponse:
        """Run one query through the full pipeline."""
        return self.serving.run(
            query, profiler=profiler, parallel_branches=self.parallel_services
        )

    def process_all(self, queries: List[IPAQuery]) -> List[SiriusResponse]:
        return self.serving.run_all(
            queries, parallel_branches=self.parallel_services
        )
