"""The end-to-end Sirius pipeline (paper Figure 2).

Life of a query: audio → ASR → Query Classifier → (action back to device) or
(QA over the search corpus); an attached image additionally runs IMM.  Every
service records wall time, so the same object drives the latency studies
(Figures 7/8) and the cycle-breakdown analysis (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.asr import (
    BigramLanguageModel,
    Decoder,
    collect_training_data,
    train_dnn_acoustic_model,
    train_gmm_acoustic_model,
)
from repro.core.classifier import QueryClassifier
from repro.core.inputset import all_sentences
from repro.profiling import Profiler
from repro.core.query import IPAQuery, QueryType, SiriusResponse
from repro.errors import ConfigurationError
from repro.imm.database import ImageDatabase
from repro.imm.image import SceneGenerator
from repro.qa import QAEngine

#: Supported acoustic back-ends (paper: Sphinx GMM vs. Kaldi/RASR DNN).
GMM_BACKEND = "gmm"
DNN_BACKEND = "dnn"


@dataclass
class SiriusPipeline:
    """A fully assembled IPA server.

    Use :meth:`build` for the standard construction (trains the acoustic
    model on the input-set sentences, indexes the default corpus and scene
    database); pass components explicitly for custom setups.
    """

    decoder: Decoder
    classifier: QueryClassifier
    qa_engine: QAEngine
    image_database: ImageDatabase
    asr_backend: str = GMM_BACKEND
    #: Run QA and IMM concurrently for voice-image queries (the Lucida-style
    #: service-parallel execution; numpy releases the GIL in IMM's hot loops).
    parallel_services: bool = False

    @classmethod
    def build(
        cls,
        asr_backend: str = GMM_BACKEND,
        training_sentences: Optional[List[str]] = None,
        training_repetitions: int = 3,
        n_scenes: int = 10,
        scene_generator: Optional[SceneGenerator] = None,
        qa_engine: Optional[QAEngine] = None,
    ) -> "SiriusPipeline":
        """Assemble and train all services."""
        if asr_backend not in (GMM_BACKEND, DNN_BACKEND):
            raise ConfigurationError(f"unknown ASR backend: {asr_backend!r}")
        sentences = (
            list(training_sentences) if training_sentences is not None else all_sentences()
        )
        data = collect_training_data(sentences, repetitions=training_repetitions)
        if asr_backend == GMM_BACKEND:
            acoustic_model = train_gmm_acoustic_model(data)
        else:
            acoustic_model = train_dnn_acoustic_model(data)
        language_model = BigramLanguageModel(sentences)
        decoder = Decoder(acoustic_model, language_model)
        generator = scene_generator if scene_generator is not None else SceneGenerator()
        database = ImageDatabase.with_scenes(n_scenes, generator=generator)
        return cls(
            decoder=decoder,
            classifier=QueryClassifier(),
            qa_engine=qa_engine if qa_engine is not None else QAEngine(),
            image_database=database,
            asr_backend=asr_backend,
        )

    # -- query processing ----------------------------------------------------------

    def process(self, query: IPAQuery, profiler: Optional[Profiler] = None) -> SiriusResponse:
        """Run one query through the full pipeline."""
        import time as _time

        wall_start = _time.perf_counter()
        profiler = profiler if profiler is not None else Profiler()
        service_seconds: Dict[str, float] = {}

        before = profiler.profile.total
        with profiler.section("asr"):
            result = self.decoder.decode_waveform(query.audio, profiler=profiler)
        service_seconds["ASR"] = profiler.profile.total - before
        transcript = result.text

        classification = self.classifier.classify(transcript)
        if classification.is_action and query.image is None:
            return SiriusResponse(
                query_type=QueryType.VOICE_COMMAND,
                transcript=transcript,
                action=transcript,
                profile=profiler.profile,
                service_seconds=service_seconds,
                wall_seconds=_time.perf_counter() - wall_start,
            )

        matched_image = ""
        if query.image is not None and self.parallel_services:
            matched_image, qa_result = self._run_services_parallel(
                query, transcript, profiler, service_seconds
            )
        else:
            if query.image is not None:
                before = profiler.profile.total
                with profiler.section("imm"):
                    match = self.image_database.match(query.image, profiler=profiler)
                service_seconds["IMM"] = profiler.profile.total - before
                matched_image = match.image_name

            before = profiler.profile.total
            with profiler.section("qa"):
                qa_result = self.qa_engine.answer(transcript or "?", profiler=profiler)
            service_seconds["QA"] = profiler.profile.total - before

        query_type = (
            QueryType.VOICE_IMAGE_QUERY if query.image is not None else QueryType.VOICE_QUERY
        )
        return SiriusResponse(
            query_type=query_type,
            transcript=transcript,
            answer=qa_result.answer_text,
            matched_image=matched_image,
            profile=profiler.profile,
            service_seconds=service_seconds,
            filter_hits=qa_result.stats.total_hits,
            wall_seconds=_time.perf_counter() - wall_start,
        )

    def _run_services_parallel(self, query, transcript, profiler, service_seconds):
        """QA and IMM on concurrent threads (VIQ latency optimization).

        Each branch gets its own profiler (wall-clock sections from two
        threads would double-count in one); their profiles merge afterwards,
        and per-service seconds reflect each branch's own elapsed time.
        """
        import time
        from concurrent.futures import ThreadPoolExecutor

        imm_profiler = Profiler()
        qa_profiler = Profiler()

        def run_imm():
            start = time.perf_counter()
            match = self.image_database.match(query.image, profiler=imm_profiler)
            return match, time.perf_counter() - start

        def run_qa():
            start = time.perf_counter()
            result = self.qa_engine.answer(transcript or "?", profiler=qa_profiler)
            return result, time.perf_counter() - start

        with ThreadPoolExecutor(max_workers=2) as pool:
            imm_future = pool.submit(run_imm)
            qa_future = pool.submit(run_qa)
            match, imm_seconds = imm_future.result()
            qa_result, qa_seconds = qa_future.result()
        profiler.profile.merge(imm_profiler.profile)
        profiler.profile.merge(qa_profiler.profile)
        service_seconds["IMM"] = imm_seconds
        service_seconds["QA"] = qa_seconds
        return match.image_name, qa_result

    def process_all(self, queries: List[IPAQuery]) -> List[SiriusResponse]:
        return [self.process(query) for query in queries]
