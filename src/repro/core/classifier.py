"""Query Classifier (QC): action vs. question (paper Figure 2).

"The translated speech then goes through a Query Classifier that decides if
the speech is an action or a question.  If it is an action, the command is
sent back to the mobile device for execution."  Commercial QCs are intent
classifiers; ours combines imperative-verb patterns with the QA question
detector, which is faithful to the role the paper gives it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.qa.question import is_question
from repro.regex import Pattern

#: Imperative command verbs that open device actions.
_ACTION_PATTERNS: List[Pattern] = [
    Pattern(r"^(set|wake|remind|call|text|play|pause|stop|open|start|turn|navigate|take|send|schedule|cancel|add|create|show)\b"),
    Pattern(r"^(don't|do not|please) (forget|let)\b"),
]

ACTION = "action"
QUESTION = "question"


@dataclass(frozen=True)
class Classification:
    """Classifier verdict plus the evidence that produced it."""

    label: str
    matched_pattern: str = ""

    @property
    def is_action(self) -> bool:
        return self.label == ACTION


class QueryClassifier:
    """Rule-based action/question classifier."""

    def classify(self, transcript: str) -> Classification:
        """Label a transcript; questions win over action verbs when both fire.

        >>> QueryClassifier().classify("set my alarm for eight am").label
        'action'
        >>> QueryClassifier().classify("what is the capital of italy").label
        'question'
        """
        text = transcript.strip().lower()
        if not text:
            return Classification(QUESTION)
        if is_question(text):
            return Classification(QUESTION)
        for pattern in _ACTION_PATTERNS:
            match = pattern.search(text)
            if match is not None:
                return Classification(ACTION, matched_pattern=pattern.pattern)
        # Default: treat as a question so the user still gets an answer.
        return Classification(QUESTION)
