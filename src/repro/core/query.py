"""Query taxonomy (paper Table 1) and the query/response data model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.asr.audio import Waveform
from repro.profiling import Profile
from repro.errors import QueryError
from repro.imm.image import Image


class QueryType(enum.Enum):
    """The three query classes of Table 1."""

    VOICE_COMMAND = "VC"
    VOICE_QUERY = "VQ"
    VOICE_IMAGE_QUERY = "VIQ"

    @property
    def services(self) -> Tuple[str, ...]:
        """Which Sirius services this query type exercises (Table 1)."""
        return {
            QueryType.VOICE_COMMAND: ("ASR",),
            QueryType.VOICE_QUERY: ("ASR", "QA"),
            QueryType.VOICE_IMAGE_QUERY: ("ASR", "QA", "IMM"),
        }[self]


@dataclass(frozen=True)
class IPAQuery:
    """One user query: speech audio, optionally accompanied by an image.

    ``text`` is the ground-truth transcript — carried for evaluation only;
    the pipeline never looks at it (recognition must come from the audio).
    """

    audio: Waveform
    image: Optional[Image] = None
    text: str = ""
    expected_type: Optional[QueryType] = None
    expected_answer: str = ""
    expected_image: str = ""

    def __post_init__(self) -> None:
        if len(self.audio) == 0:
            raise QueryError("query audio is empty")


@dataclass
class SiriusResponse:
    """What the pipeline returns to the mobile device (paper Figure 2)."""

    query_type: QueryType
    transcript: str
    action: str = ""              # VC: the command echoed back for execution
    answer: str = ""              # VQ/VIQ: best QA answer
    matched_image: str = ""       # VIQ: IMM's best database image
    profile: Profile = field(default_factory=Profile)
    service_seconds: Dict[str, float] = field(default_factory=dict)
    filter_hits: int = 0
    wall_seconds: float = 0.0  # end-to-end wall time (may be < sum when services overlap)
    #: True when any service failed and the response was served degraded
    #: (e.g. a VIQ answered without its image match) or not at all.
    degraded: bool = False
    #: Failing service label -> stable error code (``repro.errors``), e.g.
    #: ``{"IMM": "CIRCUIT_OPEN"}``.  Empty for a clean response.
    failures: Dict[str, str] = field(default_factory=dict)
    #: Finished :class:`repro.obs.trace.Span` tuple when the run was traced
    #: (loosely typed: the core layer does not import the obs package).
    spans: Tuple[Any, ...] = ()

    @property
    def failed(self) -> bool:
        """True when no usable answer exists: a *fatal* service (ASR or the
        classifier) failed — or the cluster router rejected the query at
        admission — as opposed to a degradable QA/IMM branch."""
        return any(
            label in self.failures for label in ("ASR", "CLASSIFY", "ROUTER")
        )

    @property
    def latency(self) -> float:
        if self.wall_seconds > 0:
            return self.wall_seconds
        return sum(self.service_seconds.values())

    def summary(self) -> str:
        """Human-readable one-liner for examples and logs."""
        parts = [f"[{self.query_type.value}] \"{self.transcript}\""]
        if self.action:
            parts.append(f"action={self.action!r}")
        if self.answer:
            parts.append(f"answer={self.answer!r}")
        if self.matched_image:
            parts.append(f"image={self.matched_image!r}")
        if self.failures:
            tags = ",".join(f"{k}:{v}" for k, v in sorted(self.failures.items()))
            parts.append(f"{'failed' if self.failed else 'degraded'}[{tags}]")
        parts.append(f"{self.latency * 1000:.1f} ms")
        return " ".join(parts)
