"""Compatibility shim: the profiler lives in :mod:`repro.profiling`.

It moved out of ``repro.core`` because low-level packages (asr, qa, imm)
profile themselves and must not import the core package, which imports them.
"""

from repro.profiling import NullProfiler, Profile, Profiler

__all__ = ["NullProfiler", "Profile", "Profiler"]
