"""Sirius core: the end-to-end IPA pipeline, query taxonomy, and input set."""

from repro.core.classifier import ACTION, QUESTION, Classification, QueryClassifier
from repro.core.inputset import (
    InputSet,
    VOICE_COMMANDS,
    VOICE_IMAGE_QUERIES,
    VOICE_QUERIES,
    all_sentences,
    vocabulary,
)
from repro.core.pipeline import DNN_BACKEND, GMM_BACKEND, SiriusPipeline
from repro.profiling import NullProfiler, Profile, Profiler
from repro.core.query import IPAQuery, QueryType, SiriusResponse

__all__ = [
    "ACTION",
    "Classification",
    "DNN_BACKEND",
    "GMM_BACKEND",
    "IPAQuery",
    "InputSet",
    "NullProfiler",
    "Profile",
    "Profiler",
    "QUESTION",
    "QueryClassifier",
    "QueryType",
    "SiriusPipeline",
    "SiriusResponse",
    "VOICE_COMMANDS",
    "VOICE_IMAGE_QUERIES",
    "VOICE_QUERIES",
    "all_sentences",
    "vocabulary",
]
