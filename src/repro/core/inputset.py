"""The Sirius query input set: 16 VC + 16 VQ + 10 VIQ = 42 queries (Table 1).

Texts follow the paper's examples (Table 1 and Table 2): voice commands are
device actions, voice queries are factoid questions (answerable against the
knowledge corpus in :mod:`repro.websearch.documents`), and voice-image
queries pair a question with a camera image of a database scene.

Numbers are spelled out ("eight am") because the queries are *spoken* — the
synthesizer renders words, and the recognizer's vocabulary is word-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.asr.audio import Synthesizer
from repro.core.query import IPAQuery, QueryType
from repro.imm.image import SceneGenerator

#: Voice Commands (Table 1: "Set my alarm for 8am.") — 16 entries.
VOICE_COMMANDS: Tuple[str, ...] = (
    "set my alarm for eight am",
    "wake me up at six",
    "remind me to call mom",
    "call the office now",
    "text julia i am late",
    "play some jazz music",
    "pause the music",
    "stop the timer",
    "open the calendar app",
    "start a run workout",
    "turn on the lights",
    "navigate to the airport",
    "take a selfie",
    "send the report to bob",
    "schedule lunch for noon",
    "add milk to my list",
)

#: Voice Queries (Table 2 style) — 16 factoid questions over the KB.
VOICE_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("where is las vegas", "nevada"),
    ("what is the capital of italy", "rome"),
    ("who is the author of harry potter", "rowling"),
    ("who was elected forty fourth president", "barack obama"),
    ("what is the capital of france", "paris"),
    ("how tall is mount everest", "8848"),
    ("how long is the nile river", "6650"),
    ("where is the amazon river", "south america"),
    ("when was the first moon landing", "1969"),
    ("who invented the telephone", "bell"),
    ("who founded microsoft", "gates"),
    ("what is the capital of japan", "tokyo"),
    ("what is the capital of australia", "canberra"),
    ("when did the titanic sink", "1912"),
    ("what is the capital of cuba", "havana"),
    ("who is the current president of the united states", "barack obama"),
)

#: Voice-Image Queries — 10 questions each paired with a database scene.
VOICE_IMAGE_QUERIES: Tuple[Tuple[str, str, int], ...] = (
    ("when does this restaurant close", "", 0),
    ("what is the capital of italy", "rome", 1),
    ("where is las vegas", "nevada", 2),
    ("who painted the mona lisa", "leonardo da vinci", 3),
    ("what is the capital of spain", "madrid", 4),
    ("when does this museum open", "", 5),
    ("what is the capital of germany", "berlin", 6),
    ("who discovered penicillin", "alexander fleming", 7),
    ("what is the capital of brazil", "brasilia", 8),
    ("when did the titanic sink", "1912", 9),
)

N_SCENES = 10


def all_sentences() -> List[str]:
    """Every spoken text in the input set (LM / acoustic training corpus)."""
    texts = list(VOICE_COMMANDS)
    texts.extend(question for question, _ in VOICE_QUERIES)
    texts.extend(question for question, _, _ in VOICE_IMAGE_QUERIES)
    return texts


def vocabulary() -> List[str]:
    """Sorted unique word list across the input set."""
    words: Set[str] = set()
    for sentence in all_sentences():
        words.update(sentence.split())
    return sorted(words)


@dataclass
class InputSet:
    """Materialized queries: audio synthesized, images attached.

    ``synth_seed`` controls the speaker jitter; using a seed different from
    the acoustic-training seeds means recognition runs on unseen audio.
    """

    voice_commands: List[IPAQuery]
    voice_queries: List[IPAQuery]
    voice_image_queries: List[IPAQuery]

    @classmethod
    def build(
        cls,
        synth_seed: int = 2015,
        scene_generator: Optional[SceneGenerator] = None,
    ) -> "InputSet":
        synthesizer = Synthesizer(seed=synth_seed)
        generator = scene_generator if scene_generator is not None else SceneGenerator()

        commands = [
            IPAQuery(
                audio=synthesizer.synthesize(text),
                text=text,
                expected_type=QueryType.VOICE_COMMAND,
            )
            for text in VOICE_COMMANDS
        ]
        queries = [
            IPAQuery(
                audio=synthesizer.synthesize(text),
                text=text,
                expected_type=QueryType.VOICE_QUERY,
                expected_answer=answer,
            )
            for text, answer in VOICE_QUERIES
        ]
        image_queries = [
            IPAQuery(
                audio=synthesizer.synthesize(text),
                image=generator.query_for(scene),
                text=text,
                expected_type=QueryType.VOICE_IMAGE_QUERY,
                expected_answer=answer,
                expected_image=f"scene-{scene}",
            )
            for text, answer, scene in VOICE_IMAGE_QUERIES
        ]
        return cls(commands, queries, image_queries)

    @property
    def all_queries(self) -> List[IPAQuery]:
        return self.voice_commands + self.voice_queries + self.voice_image_queries

    def by_type(self, query_type: QueryType) -> List[IPAQuery]:
        return {
            QueryType.VOICE_COMMAND: self.voice_commands,
            QueryType.VOICE_QUERY: self.voice_queries,
            QueryType.VOICE_IMAGE_QUERY: self.voice_image_queries,
        }[query_type]

    def __len__(self) -> int:
        return len(self.all_queries)
