"""Streaming (online) speech recognition.

Real IPAs decode while the user is still talking.  This module provides:

- :class:`StreamingFeatureExtractor` — incremental MFCCs: audio arrives in
  arbitrary chunks; frames are emitted as soon as their samples (plus the
  2-frame delta lookahead) exist;
- :class:`StreamingDecoder` — a stateful Viterbi: ``feed`` audio chunks,
  read ``partial()`` hypotheses any time, ``finish()`` for the final
  result.  The final transcript matches offline decoding of the same audio
  up to edge effects at the tail padding.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.asr.audio import Waveform
from repro.asr.decoder import DecodeResult, Decoder
from repro.asr.features import FeatureConfig, FeatureExtractor, compute_deltas
from repro.errors import DecodingError
from repro.profiling import NullProfiler, Profiler


class StreamingFeatureExtractor:
    """Incremental MFCC extraction with delta lookahead.

    ``push(samples)`` returns any newly completed feature rows; ``flush()``
    pads the tail (edge-style, matching the offline extractor) and returns
    the remaining rows.
    """

    LOOKAHEAD = 2  # frames of future context the delta window needs

    def __init__(self, config: FeatureConfig = FeatureConfig(), sample_rate: int = 16000):
        self.config = config
        self.sample_rate = sample_rate
        # Pre-emphasis is applied incrementally here (it needs one sample of
        # cross-chunk context), so the inner extractor runs with it off.
        self._extractor = FeatureExtractor(
            FeatureConfig(
                frame_length=config.frame_length,
                frame_hop=config.frame_hop,
                n_filters=config.n_filters,
                n_coefficients=config.n_coefficients,
                pre_emphasis=0.0,
                low_freq=config.low_freq,
                high_freq=config.high_freq,
                add_deltas=False,
                cmvn=False,  # CMVN needs the whole utterance; not streamable
            )
        )
        self._frame_size = int(config.frame_length * sample_rate)
        self._hop = int(config.frame_hop * sample_rate)
        self._sample_buffer = np.zeros(0)
        self._prev_raw: Optional[float] = None  # last raw sample (pre-emphasis carry)
        self._cepstra: List[np.ndarray] = []   # all static frames so far
        self._emitted = 0                       # frames already released

    def push(self, samples: np.ndarray) -> np.ndarray:
        """Add audio; return newly available (n, dim) feature rows."""
        samples = np.asarray(samples, dtype=float).ravel()
        if len(samples):
            # Incremental pre-emphasis: y[i] = x[i] - a*x[i-1], carrying the
            # previous chunk's last raw sample (first sample passes through,
            # as in the offline extractor).
            alpha = self.config.pre_emphasis
            if alpha > 0:
                previous = np.empty_like(samples)
                previous[1:] = samples[:-1]
                if self._prev_raw is None:
                    emphasized = samples.copy()
                    previous[0] = 0.0
                    emphasized[1:] = samples[1:] - alpha * previous[1:]
                else:
                    previous[0] = self._prev_raw
                    emphasized = samples - alpha * previous
                self._prev_raw = float(samples[-1])
                samples = emphasized
            self._sample_buffer = np.concatenate([self._sample_buffer, samples])
        # Process every complete frame window currently in the buffer.
        n_ready = 1 + (len(self._sample_buffer) - self._frame_size) // self._hop
        if n_ready > 0:
            used = (n_ready - 1) * self._hop + self._frame_size
            rows = self._extractor.extract(
                Waveform(self._sample_buffer[:used], self.sample_rate)
            )
            self._cepstra.extend(rows[:n_ready])
            self._sample_buffer = self._sample_buffer[n_ready * self._hop :]
        return self._release(final=False)

    def _release(self, final: bool) -> np.ndarray:
        available = len(self._cepstra) - (0 if final else self.LOOKAHEAD)
        if available <= self._emitted:
            return np.zeros((0, self.config.dimension))
        static = np.vstack(self._cepstra)
        if self.config.add_deltas:
            full = np.hstack([static, compute_deltas(static)])
        else:
            full = static
        rows = full[self._emitted : available]
        self._emitted = available
        return rows

    def flush(self) -> np.ndarray:
        """Emit the remaining frames (tail lookahead resolved by padding).

        An utterance whose *total* length never reached one frame window is
        zero-padded to a single frame here, matching the offline extractor
        (``frame_signal`` pads sub-frame signals rather than dropping them).
        A stream that received no samples at all stays empty — padding it
        would fabricate a frame out of nothing.
        """
        if not self._cepstra and len(self._sample_buffer):
            # Sub-frame utterance: the buffer holds every (already
            # pre-emphasized) sample; pad with zeros exactly as the offline
            # path pads the raw signal after its own pre-emphasis.
            padded = np.zeros(self._frame_size)
            padded[: len(self._sample_buffer)] = self._sample_buffer
            rows = self._extractor.extract(Waveform(padded, self.sample_rate))
            self._cepstra.extend(rows[:1])
            self._sample_buffer = np.zeros(0)
        return self._release(final=True)

    @property
    def n_frames_emitted(self) -> int:
        return self._emitted


class StreamingDecoder:
    """Online Viterbi over a :class:`~repro.asr.decoder.Decoder`'s graph.

    >>> streaming = StreamingDecoder(decoder)          # doctest: +SKIP
    >>> for chunk in chunks: streaming.feed(chunk)     # doctest: +SKIP
    >>> streaming.finish().text                        # doctest: +SKIP
    """

    def __init__(self, decoder: Decoder, profiler: Optional[Profiler] = None):
        self.decoder = decoder
        #: Sections mirror the offline decoder's Figure 9 breakdown
        #: (``asr.features`` / ``asr.scoring`` / ``asr.search``) so a
        #: streaming session attributes component time under the same names.
        self.profiler = profiler if profiler is not None else NullProfiler()
        self._features = StreamingFeatureExtractor(decoder.feature_extractor.config)
        graph = decoder._graph
        self._n_states = len(graph.pstate)
        self._delta: Optional[np.ndarray] = None
        self._hist = np.full(self._n_states, -1, dtype=np.int64)
        self._links: List[Tuple[int, int]] = []
        self._frames_seen = 0
        self._finished = False

    @property
    def frames_seen(self) -> int:
        """Frames the Viterbi has consumed so far."""
        return self._frames_seen

    # -- core stepping ----------------------------------------------------------

    def _step_frames(self, features: np.ndarray) -> None:
        if len(features) == 0:
            return
        decoder = self.decoder
        graph = decoder._graph
        with self.profiler.section("asr.scoring"):
            emissions = decoder.acoustic_model.emission_scores(features)
        with self.profiler.section("asr.search"):
            self._search_frames(features, emissions)

    def _search_frames(self, features: np.ndarray, emissions: np.ndarray) -> None:
        decoder = self.decoder
        graph = decoder._graph
        frame_scores = emissions[:, graph.pstate]
        n_words = len(decoder.vocabulary)
        neg_inf = -1e30

        for row in range(len(features)):
            if self._delta is None:
                bos = decoder.lm_weight * decoder._lm_matrix[n_words] + decoder.insertion_penalty
                self._delta = np.full(self._n_states, neg_inf)
                self._delta[graph.starts] = frame_scores[row, graph.starts] + bos
                self._delta[0] = frame_scores[row, 0]  # lead silence
                self._frames_seen += 1
                continue
            delta = self._delta
            hist = self._hist
            stay = delta + decoder.log_self
            advance = np.empty(self._n_states)
            advance[0] = neg_inf
            advance[1:] = delta[:-1] + decoder.log_adv
            advance[graph.is_start] = neg_inf
            take = advance > stay
            new_delta = np.where(take, advance, stay)
            new_hist = hist.copy()
            moved = np.where(take)[0]
            new_hist[moved] = hist[moved - 1]

            end_phone = delta[graph.phone_ends]
            end_sil = delta[graph.sil_ends]
            use_sil = end_sil > end_phone
            end_scores = np.where(use_sil, end_sil, end_phone)
            end_states = np.where(use_sil, graph.sil_ends, graph.phone_ends)
            candidate = end_scores[:, None] + decoder.lm_weight * decoder._lm_matrix[:n_words]
            best_prev = np.argmax(candidate, axis=0)
            entry = candidate[best_prev, np.arange(n_words)] + decoder.insertion_penalty
            entry_delta = entry + decoder.log_adv
            bos_entry = (
                delta[graph.lead_sil_end]
                + decoder.lm_weight * decoder._lm_matrix[n_words]
                + decoder.insertion_penalty
                + decoder.log_adv
            )
            better = np.maximum(entry_delta, bos_entry) > new_delta[graph.starts]
            for word_index in np.where(better)[0]:
                state = graph.starts[word_index]
                if bos_entry[word_index] >= entry_delta[word_index]:
                    new_delta[state] = bos_entry[word_index]
                    new_hist[state] = hist[graph.lead_sil_end]
                else:
                    prev_word = int(best_prev[word_index])
                    self._links.append((prev_word, int(hist[int(end_states[prev_word])])))
                    new_delta[state] = entry_delta[word_index]
                    new_hist[state] = len(self._links) - 1

            new_delta += frame_scores[row]
            if decoder.beam is not None:
                new_delta[new_delta < new_delta.max() - decoder.beam] = neg_inf
            self._delta = new_delta
            self._hist = new_hist
            self._frames_seen += 1

    # -- public API ------------------------------------------------------------------

    def feed(self, samples: np.ndarray) -> None:
        """Add an audio chunk (any length, including empty)."""
        if self._finished:
            raise DecodingError("decoder already finished; create a new one")
        with self.profiler.section("asr.features"):
            rows = self._features.push(samples)
        self._step_frames(rows)

    def partial(self) -> str:
        """Best running hypothesis over the audio so far ('' before any frame)."""
        result = self._best_result()
        return result.text if result is not None else ""

    def finish(self) -> DecodeResult:
        """Flush buffered audio and return the final result."""
        if not self._finished:
            with self.profiler.section("asr.features"):
                rows = self._features.flush()
            self._step_frames(rows)
            self._finished = True
        result = self._best_result()
        if result is None:
            raise DecodingError("no audio decoded")
        return result

    def _best_result(self) -> Optional[DecodeResult]:
        if self._delta is None:
            return None
        decoder = self.decoder
        graph = decoder._graph
        delta = self._delta
        end_phone = delta[graph.phone_ends]
        end_sil = delta[graph.sil_ends]
        use_sil = end_sil > end_phone
        end_scores = np.where(use_sil, end_sil, end_phone)
        end_states = np.where(use_sil, graph.sil_ends, graph.phone_ends)
        final = end_scores + decoder.lm_weight * decoder._lm_eos
        best_word = int(np.argmax(final))
        if final[best_word] <= -5e29:
            return None
        words = decoder._backtrack(int(self._hist[int(end_states[best_word])]), self._links)
        words.append(decoder.vocabulary[best_word])
        return DecodeResult(
            text=" ".join(words),
            words=tuple(words),
            log_score=float(final[best_word]),
            n_frames=self._frames_seen,
        )
