"""Bigram language model with add-k smoothing (the ASR "Language Model" box)."""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ModelError

BOS = "<s>"
EOS = "</s>"


class BigramLanguageModel:
    """P(word | previous word) over a closed vocabulary.

    >>> lm = BigramLanguageModel(["set my alarm", "set my timer"])
    >>> lm.log_prob("my", "set") > lm.log_prob("alarm", "set")
    True
    """

    def __init__(self, sentences: Iterable[str], add_k: float = 0.1):
        if add_k <= 0:
            raise ModelError("add_k must be positive")
        self.add_k = add_k
        self._unigrams: Counter = Counter()
        self._bigrams: Dict[str, Counter] = defaultdict(Counter)
        n_sentences = 0
        for sentence in sentences:
            words = [w.lower() for w in sentence.split() if w]
            if not words:
                continue
            n_sentences += 1
            previous = BOS
            for word in words:
                self._unigrams[word] += 1
                self._bigrams[previous][word] += 1
                previous = word
            self._bigrams[previous][EOS] += 1
        if n_sentences == 0:
            raise ModelError("language model needs at least one sentence")
        self.vocabulary: List[str] = sorted(self._unigrams)
        self._vocab_size = len(self.vocabulary) + 1  # +1 for EOS

    def log_prob(self, word: str, previous: str = BOS) -> float:
        """Smoothed log P(word | previous)."""
        word = word.lower()
        previous = previous.lower() if previous not in (BOS, EOS) else previous
        context = self._bigrams.get(previous, Counter())
        numerator = context.get(word, 0) + self.add_k
        denominator = sum(context.values()) + self.add_k * self._vocab_size
        return math.log(numerator / denominator)

    def sentence_log_prob(self, sentence: str) -> float:
        """Joint log probability of a sentence, including the EOS event."""
        words = [w.lower() for w in sentence.split() if w]
        total = 0.0
        previous = BOS
        for word in words:
            total += self.log_prob(word, previous)
            previous = word
        return total + self.log_prob(EOS, previous)

    def transition_matrix(self, words: Sequence[str]) -> "np.ndarray":
        """(V+1, V) matrix of log P(words[j] | row) for decoding.

        Row V is the BOS context; used by the Viterbi decoder to vectorize
        cross-word transitions.
        """
        import numpy as np

        size = len(words)
        matrix = np.empty((size + 1, size))
        for column, word in enumerate(words):
            for row, previous in enumerate(words):
                matrix[row, column] = self.log_prob(word, previous)
            matrix[size, column] = self.log_prob(word, BOS)
        return matrix

    def eos_vector(self, words: Sequence[str]) -> "np.ndarray":
        """(V,) log P(EOS | word) for final-state scoring."""
        import numpy as np

        return np.array([self.log_prob(EOS, word) for word in words])


class TrigramLanguageModel:
    """Interpolated trigram LM for second-pass (n-best) rescoring.

    P(w | u, v) = l3*ML(w|u,v) + l2*ML(w|v) + l1*ML(w), with add-k smoothing
    on the unigram floor.  Decoding stays bigram (the graph would otherwise
    need per-history states); the trigram re-ranks the decoder's n-best list
    — the classic two-pass architecture large-vocabulary systems use.
    """

    def __init__(
        self,
        sentences: Iterable[str],
        weights: Tuple[float, float, float] = (0.6, 0.3, 0.1),
        add_k: float = 0.1,
    ):
        l3, l2, l1 = weights
        if min(weights) < 0 or not 0.99 <= l3 + l2 + l1 <= 1.01:
            raise ModelError("interpolation weights must be >= 0 and sum to 1")
        self.weights = weights
        self.add_k = add_k
        self._unigrams: Counter = Counter()
        self._bigrams: Dict[str, Counter] = defaultdict(Counter)
        self._trigrams: Dict[Tuple[str, str], Counter] = defaultdict(Counter)
        n_sentences = 0
        for sentence in sentences:
            words = [w.lower() for w in sentence.split() if w]
            if not words:
                continue
            n_sentences += 1
            history = (BOS, BOS)
            for word in words + [EOS]:
                self._unigrams[word] += 1
                self._bigrams[history[1]][word] += 1
                self._trigrams[history][word] += 1
                history = (history[1], word)
        if n_sentences == 0:
            raise ModelError("language model needs at least one sentence")
        self._total_words = sum(self._unigrams.values())
        self._vocab_size = len(self._unigrams)

    def probability(self, word: str, context: Tuple[str, str]) -> float:
        """Interpolated P(word | context); context is (u, v)."""
        word = word.lower()
        u, v = context
        l3, l2, l1 = self.weights
        tri = self._trigrams.get((u, v), Counter())
        tri_total = sum(tri.values())
        p3 = tri.get(word, 0) / tri_total if tri_total else 0.0
        bi = self._bigrams.get(v, Counter())
        bi_total = sum(bi.values())
        p2 = bi.get(word, 0) / bi_total if bi_total else 0.0
        p1 = (self._unigrams.get(word, 0) + self.add_k) / (
            self._total_words + self.add_k * (self._vocab_size + 1)
        )
        return l3 * p3 + l2 * p2 + l1 * p1

    def sentence_log_prob(self, sentence: str) -> float:
        words = [w.lower() for w in sentence.split() if w]
        history = (BOS, BOS)
        total = 0.0
        for word in words + [EOS]:
            total += math.log(max(self.probability(word, history), 1e-300))
            history = (history[1], word)
        return total


def rescore_nbest(results, trigram: TrigramLanguageModel, weight: float = 5.0):
    """Re-rank an n-best list by decoder score + weighted trigram score.

    Returns the results sorted by the combined score, best first.
    """
    if weight < 0:
        raise ModelError("rescoring weight must be >= 0")
    scored = [
        (result.log_score + weight * trigram.sentence_log_prob(result.text), result)
        for result in results
    ]
    scored.sort(key=lambda item: -item[0])
    return [result for _, result in scored]
