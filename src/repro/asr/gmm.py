"""Diagonal-covariance Gaussian mixture models for acoustic scoring.

This is the paper's GMM kernel (Table 4): "the major computation of the
algorithm lies in three nested loops that iteratively score the feature
vector against the training data" — feature vectors against per-state means,
precisions, and mixture weights.  :meth:`DiagonalGMM.log_likelihood` is the
vectorized scorer used in production paths; :func:`score_naive` keeps the
literal three-nested-loop form as the single-threaded CMP baseline the suite
benchmarks against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.obs.counters import record_work

_LOG_2PI = float(np.log(2.0 * np.pi))

#: Mixture weights never reach zero in EM (counts get +1e-10), but a
#: degenerate component must clamp to a finite log weight, not -inf.
_WEIGHT_FLOOR = np.finfo(np.float64).tiny


@dataclass
class DiagonalGMM:
    """K-component diagonal GMM over D-dimensional features.

    Parameters are stored exactly as the paper's FPGA design consumes them
    (Figure 11): a means vector, a precisions ("precs") vector, per-component
    log-weights, and a per-component additive factor folding in the Gaussian
    normalization constants.
    """

    means: np.ndarray        # (K, D)
    precisions: np.ndarray   # (K, D) -- 1 / variance
    log_weights: np.ndarray  # (K,)

    def __post_init__(self) -> None:
        if self.means.ndim != 2 or self.means.shape != self.precisions.shape:
            raise ModelError("means and precisions must both be (K, D)")
        if self.log_weights.shape != (self.means.shape[0],):
            raise ModelError("log_weights must be (K,)")
        if np.any(self.precisions <= 0):
            raise ModelError("precisions must be positive")
        # factor[k] = log w_k - 0.5 * (D log 2pi - sum log prec_k)
        dimension = self.means.shape[1]
        self.factors = (
            self.log_weights
            - 0.5 * (dimension * _LOG_2PI - np.log(self.precisions).sum(axis=1))
        )

    @property
    def n_components(self) -> int:
        return self.means.shape[0]

    @property
    def dimension(self) -> int:
        return self.means.shape[1]

    def component_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        """(T, K) per-component log densities (weights included)."""
        features = np.atleast_2d(features)
        if features.shape[1] != self.dimension:
            raise ModelError(
                f"feature dimension {features.shape[1]} != model {self.dimension}"
            )
        # (T, K): -0.5 * sum_d prec * (x - mu)^2, computed via broadcasting.
        diff = features[:, None, :] - self.means[None, :, :]
        mahalanobis = np.einsum("tkd,kd->tk", diff * diff, self.precisions)
        return self.factors[None, :] - 0.5 * mahalanobis

    def log_likelihood(self, features: np.ndarray) -> np.ndarray:
        """(T,) log p(x_t) via log-sum-exp over components."""
        component = self.component_log_likelihood(features)
        peak = component.max(axis=1, keepdims=True)
        # Counter model: 4 flops per (frame, component, dimension) cell
        # (subtract, square, precision-multiply, accumulate) plus ~6 per
        # (T, K) cell for the factor add and the log-sum-exp; bytes touch
        # the feature block, both parameter banks, and the (T, K) scores.
        frames = np.atleast_2d(features).shape[0]
        record_work(
            flops=4 * frames * self.n_components * self.dimension
            + 6 * frames * self.n_components,
            mem_bytes=8
            * (
                frames * self.dimension
                + 2 * self.n_components * self.dimension
                + frames * self.n_components
            ),
            items=frames,
        )
        return (peak + np.log(np.exp(component - peak).sum(axis=1, keepdims=True))).ravel()

    def score(self, feature: np.ndarray) -> float:
        """Log-likelihood of a single feature vector."""
        return float(self.log_likelihood(feature[None, :])[0])


def score_naive(gmm: DiagonalGMM, features: np.ndarray) -> np.ndarray:
    """Literal three-nested-loop GMM scoring (the CMP baseline kernel).

    Outer loop over feature vectors, middle loop over mixture components
    (the log-summation the paper could not parallelize), inner loop over
    dimensions (the log-differential unit it fully parallelized on FPGA).
    """
    features = np.atleast_2d(features)
    n_frames = features.shape[0]
    out = np.empty(n_frames)
    for t in range(n_frames):
        total = -np.inf
        for k in range(gmm.n_components):
            acc = gmm.factors[k]
            for d in range(gmm.dimension):
                diff = features[t, d] - gmm.means[k, d]
                acc -= 0.5 * gmm.precisions[k, d] * diff * diff
            total = max(total, acc) + np.log1p(np.exp(-abs(total - acc)))
        out[t] = total
    return out


def fit_gmm(
    data: np.ndarray,
    n_components: int = 4,
    n_iterations: int = 10,
    seed: int = 0,
    min_variance: float = 1e-3,
) -> DiagonalGMM:
    """Fit a diagonal GMM with k-means initialization then EM.

    Small and deterministic; adequate for per-phoneme-state acoustic models
    trained on synthesized speech.
    """
    data = np.atleast_2d(data)
    n_samples, dimension = data.shape
    if n_samples < n_components:
        raise ModelError("need at least one sample per component")
    rng = np.random.default_rng(seed)

    # k-means++-style init: spread starting means over the data.
    means = data[rng.choice(n_samples, size=n_components, replace=False)].copy()
    for _ in range(5):
        distances = ((data[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
        assignment = distances.argmin(axis=1)
        for k in range(n_components):
            members = data[assignment == k]
            if len(members):
                means[k] = members.mean(axis=0)

    variances = np.full((n_components, dimension), data.var(axis=0) + min_variance)
    weights = np.full(n_components, 1.0 / n_components)

    for _ in range(n_iterations):
        gmm = DiagonalGMM(means, 1.0 / variances, np.log(np.maximum(weights, _WEIGHT_FLOOR)))
        log_resp = gmm.component_log_likelihood(data)
        peak = log_resp.max(axis=1, keepdims=True)
        resp = np.exp(log_resp - peak)
        resp /= resp.sum(axis=1, keepdims=True)

        counts = resp.sum(axis=0) + 1e-10
        weights = counts / counts.sum()
        means = (resp.T @ data) / counts[:, None]
        squared = (resp.T @ (data * data)) / counts[:, None]
        variances = np.maximum(squared - means**2, min_variance)

    return DiagonalGMM(means, 1.0 / variances, np.log(np.maximum(weights, _WEIGHT_FLOOR)))
