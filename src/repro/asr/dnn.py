"""Feed-forward DNN acoustic scorer (the paper's DNN kernel).

Scoring "amounts to one forward pass through the network" (Section 2.3.1):
stacked context frames in, log state posteriors out, converted to HMM
emission scores by dividing out the state prior (the standard hybrid
DNN/HMM construction).  Training is plain mini-batch SGD with backprop on
frame-level alignments, which the synthesizer provides exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ModelError
from repro.obs.counters import record_work


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    peak = logits.max(axis=1, keepdims=True)
    shifted = logits - peak
    # `shifted` is already max-subtracted, so exp cannot overflow here.
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))  # statcheck: ignore[SC102]


@dataclass
class DNNConfig:
    """Network shape and training hyperparameters."""

    input_dim: int
    n_classes: int
    hidden_sizes: Tuple[int, ...] = (128, 128)
    context: int = 2           # frames of context on each side
    learning_rate: float = 0.01
    batch_size: int = 128
    epochs: int = 8
    seed: int = 99

    @property
    def stacked_dim(self) -> int:
        return self.input_dim * (2 * self.context + 1)


class DeepNeuralNetwork:
    """An MLP with ReLU hidden layers and a softmax output."""

    def __init__(self, config: DNNConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        sizes = [config.stacked_dim, *config.hidden_sizes, config.n_classes]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, (fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        # Log state priors, estimated from training labels; uniform until fit.
        self.log_priors = np.full(config.n_classes, -np.log(config.n_classes))

    # -- context stacking ---------------------------------------------------------

    def stack_context(self, features: np.ndarray) -> np.ndarray:
        """(T, D) frames → (T, D*(2c+1)) stacked windows with edge padding."""
        context = self.config.context
        if features.ndim != 2 or features.shape[1] != self.config.input_dim:
            raise ModelError("features must be (T, input_dim)")
        padded = np.pad(features, ((context, context), (0, 0)), mode="edge")
        slices = [
            padded[offset : offset + len(features)]
            for offset in range(2 * context + 1)
        ]
        return np.hstack(slices)

    # -- inference ----------------------------------------------------------------

    def forward(self, stacked: np.ndarray) -> np.ndarray:
        """Logits for pre-stacked input (the benchmark-visible hot loop)."""
        activation = stacked
        last = len(self.weights) - 1
        # Counter model: a (B, n) @ (n, k) matmul is 2*B*n*k flops plus
        # B*k for the bias add (and ReLU comparison on hidden layers);
        # bytes touch both operands and the output once, float64.
        batch = stacked.shape[0] if stacked.ndim == 2 else 1
        flops = 0
        moved = 0
        for weight in self.weights:
            fan_in, fan_out = weight.shape
            flops += 2 * batch * fan_in * fan_out + 2 * batch * fan_out
            moved += 8 * (batch * fan_in + fan_in * fan_out + batch * fan_out)
        record_work(flops=flops, mem_bytes=moved, items=batch)
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            activation = activation @ weight + bias
            if index != last:
                activation = _relu(activation)
        return activation

    def log_posteriors(self, features: np.ndarray) -> np.ndarray:
        """(T, n_classes) log p(class | frame)."""
        return _log_softmax(self.forward(self.stack_context(features)))

    def emission_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        """Hybrid scaled likelihood: log p(x|s) ∝ log p(s|x) - log p(s)."""
        return self.log_posteriors(features) - self.log_priors[None, :]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.log_posteriors(features).argmax(axis=1)

    # -- training -------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray, verbose: bool = False) -> List[float]:
        """Mini-batch SGD on cross-entropy; returns per-epoch mean loss."""
        if len(features) != len(labels):
            raise ModelError("features and labels must align")
        config = self.config
        stacked = self.stack_context(features)
        labels = np.asarray(labels, dtype=np.int64)

        counts = np.bincount(labels, minlength=config.n_classes).astype(float)
        self.log_priors = np.log((counts + 1.0) / (counts.sum() + config.n_classes))

        rng = np.random.default_rng(config.seed + 1)
        losses: List[float] = []
        for epoch in range(config.epochs):
            order = rng.permutation(len(stacked))
            epoch_loss = 0.0
            n_batches = 0
            rate = config.learning_rate / (1.0 + epoch / 4.0)
            for start in range(0, len(order), config.batch_size):
                batch = order[start : start + config.batch_size]
                epoch_loss += self._sgd_step(stacked[batch], labels[batch], rate)
                n_batches += 1
            losses.append(epoch_loss / max(n_batches, 1))
        return losses

    def _sgd_step(self, x: np.ndarray, y: np.ndarray, rate: float) -> float:
        # Forward, keeping activations for backprop.
        activations = [x]
        pre_activations = []
        activation = x
        last = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            z = activation @ weight + bias
            pre_activations.append(z)
            activation = _relu(z) if index != last else z
            activations.append(activation)

        log_probs = _log_softmax(activations[-1])
        n = len(x)
        loss = -float(log_probs[np.arange(n), y].mean())

        # Backward.
        grad = np.exp(log_probs)
        grad[np.arange(n), y] -= 1.0
        grad /= n
        for index in range(len(self.weights) - 1, -1, -1):
            grad_w = activations[index].T @ grad
            grad_b = grad.sum(axis=0)
            if index > 0:
                grad = (grad @ self.weights[index].T) * (pre_activations[index - 1] > 0)
            self.weights[index] -= rate * grad_w
            self.biases[index] -= rate * grad_b
        return loss
