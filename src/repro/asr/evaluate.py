"""ASR evaluation: word error rate and noise-robustness sweeps.

WER is the standard ASR metric (Levenshtein distance over words / reference
length).  The robustness sweep re-synthesizes an utterance set at increasing
noise levels and reports the WER curve — the degradation study any real ASR
release ships with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.asr.audio import Synthesizer
from repro.asr.decoder import Decoder
from repro.errors import ConfigurationError, DecodingError


def word_edit_distance(reference: Sequence[str], hypothesis: Sequence[str]) -> Tuple[int, int, int]:
    """(substitutions, deletions, insertions) of the minimal alignment."""
    n_ref = len(reference)
    n_hyp = len(hypothesis)
    # dp[i][j] = (cost, subs, dels, ins)
    dp = [[(0, 0, 0, 0)] * (n_hyp + 1) for _ in range(n_ref + 1)]
    for i in range(1, n_ref + 1):
        dp[i][0] = (i, 0, i, 0)
    for j in range(1, n_hyp + 1):
        dp[0][j] = (j, 0, 0, j)
    for i in range(1, n_ref + 1):
        for j in range(1, n_hyp + 1):
            if reference[i - 1] == hypothesis[j - 1]:
                dp[i][j] = dp[i - 1][j - 1]
                continue
            sub_cost, subs, dels, ins = dp[i - 1][j - 1]
            del_cost = dp[i - 1][j]
            ins_cost = dp[i][j - 1]
            best = min(
                (sub_cost + 1, subs + 1, dels, ins),
                (del_cost[0] + 1, del_cost[1], del_cost[2] + 1, del_cost[3]),
                (ins_cost[0] + 1, ins_cost[1], ins_cost[2], ins_cost[3] + 1),
            )
            dp[i][j] = best
    _, subs, dels, ins = dp[n_ref][n_hyp]
    return subs, dels, ins


@dataclass(frozen=True)
class WERResult:
    """Aggregate recognition quality over an utterance set."""

    substitutions: int
    deletions: int
    insertions: int
    reference_words: int
    exact_sentences: int
    total_sentences: int

    @property
    def wer(self) -> float:
        """Word error rate; 0.0 is perfect, can exceed 1.0."""
        if self.reference_words == 0:
            return 0.0
        errors = self.substitutions + self.deletions + self.insertions
        return errors / self.reference_words

    @property
    def sentence_accuracy(self) -> float:
        if self.total_sentences == 0:
            return 0.0
        return self.exact_sentences / self.total_sentences


def evaluate_wer(
    decoder: Decoder,
    sentences: Sequence[str],
    synthesizer: Synthesizer,
) -> WERResult:
    """Synthesize each sentence, decode it, and accumulate WER counts."""
    if not sentences:
        raise ConfigurationError("need at least one evaluation sentence")
    subs = dels = ins = ref_words = exact = 0
    for sentence in sentences:
        reference = sentence.split()
        try:
            hypothesis = decoder.decode_waveform(synthesizer.synthesize(sentence)).words
        except DecodingError:
            # Beam collapse at extreme noise: score as deleting everything.
            hypothesis = ()
        s, d, i = word_edit_distance(reference, list(hypothesis))
        subs += s
        dels += d
        ins += i
        ref_words += len(reference)
        exact += list(hypothesis) == reference
    return WERResult(subs, dels, ins, ref_words, exact, len(sentences))


def noise_robustness_sweep(
    decoder: Decoder,
    sentences: Sequence[str],
    noise_levels: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    seed: int = 777,
) -> Dict[float, WERResult]:
    """WER at each synthesis noise level (degradation curve)."""
    results: Dict[float, WERResult] = {}
    for level in noise_levels:
        synthesizer = Synthesizer(noise_level=level, seed=seed)
        results[level] = evaluate_wer(decoder, sentences, synthesizer)
    return results
