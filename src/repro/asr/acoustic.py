"""Acoustic models: per-state GMMs and the hybrid DNN, plus their trainers.

The acoustic state space is ``(N_PHONEMES + 1) * STATES_PER_PHONEME`` HMM
emission states — three left-to-right states per phoneme plus a silence
unit.  Both model families expose ``emission_scores(features)`` returning a
``(T, n_states)`` matrix of emission log-likelihoods; the Viterbi decoder is
agnostic to which family produced them, mirroring how Sirius swaps Sphinx's
GMM for Kaldi/RASR's DNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.asr.audio import SAMPLE_RATE, Synthesizer
from repro.asr.dnn import DeepNeuralNetwork, DNNConfig
from repro.asr.features import FeatureConfig, FeatureExtractor
from repro.asr.gmm import DiagonalGMM, fit_gmm
from repro.asr.phonemes import N_PHONEMES, PHONEME_INDEX
from repro.errors import ModelError

STATES_PER_PHONEME = 3
SILENCE = "SIL"
SILENCE_INDEX = N_PHONEMES  # appended after the real phonemes
N_UNITS = N_PHONEMES + 1
N_EMISSION_STATES = N_UNITS * STATES_PER_PHONEME


def phoneme_state_id(symbol: str, sub_state: int) -> int:
    """Emission-state id for (phoneme, sub-state)."""
    if not 0 <= sub_state < STATES_PER_PHONEME:
        raise ModelError(f"sub_state out of range: {sub_state}")
    unit = SILENCE_INDEX if symbol == SILENCE else PHONEME_INDEX[symbol]
    return unit * STATES_PER_PHONEME + sub_state


class AcousticModel(Protocol):
    """Anything that scores feature frames against emission states."""

    def emission_scores(self, features: np.ndarray) -> np.ndarray:
        """(T, N_EMISSION_STATES) emission log-likelihoods."""
        ...


@dataclass
class GMMAcousticModel:
    """One diagonal GMM per emission state (the Sphinx-style model).

    States that had too little training data score through the ``fallback``
    GMM (fit on all frames) with ``fallback_penalty`` subtracted, so rare
    states stay reachable without being preferred.
    """

    gmms: Dict[int, DiagonalGMM]
    fallback: Optional[DiagonalGMM] = None
    fallback_penalty: float = 8.0

    def emission_scores(self, features: np.ndarray) -> np.ndarray:
        if self.fallback is not None:
            base = self.fallback.log_likelihood(features) - self.fallback_penalty
            scores = np.tile(base[:, None], (1, N_EMISSION_STATES))
        else:
            scores = np.full((len(features), N_EMISSION_STATES), -1e30)
        for state, gmm in self.gmms.items():
            scores[:, state] = gmm.log_likelihood(features)
        return scores


@dataclass
class DNNAcousticModel:
    """Hybrid DNN/HMM model: scaled posteriors as emission scores."""

    network: DeepNeuralNetwork

    def emission_scores(self, features: np.ndarray) -> np.ndarray:
        if self.network.config.n_classes != N_EMISSION_STATES:
            raise ModelError("DNN output size must match emission-state count")
        return self.network.emission_log_likelihood(features)


# ---------------------------------------------------------------------------
# Frame labeling from synthesis alignments
# ---------------------------------------------------------------------------


def label_frames(
    alignment: Sequence[Tuple[str, int, int]],
    n_frames: int,
    n_samples: int,
    feature_config: FeatureConfig,
    sample_rate: int = SAMPLE_RATE,
) -> np.ndarray:
    """Assign each feature frame an emission-state label.

    A frame is labeled by the phoneme covering its center sample; each
    phoneme segment splits evenly into its three HMM sub-states.  Samples
    not covered by any phoneme (inter-word pauses) label as silence.
    """
    hop = int(feature_config.frame_hop * sample_rate)
    frame_size = int(feature_config.frame_length * sample_rate)
    labels = np.full(n_frames, phoneme_state_id(SILENCE, 1), dtype=np.int64)
    for symbol, start, end in alignment:
        if end <= start:
            continue
        span = end - start
        for frame in range(n_frames):
            center = frame * hop + frame_size // 2
            if start <= center < end:
                third = min(int(3 * (center - start) / span), 2)
                labels[frame] = phoneme_state_id(symbol, third)
    return labels


@dataclass
class TrainingData:
    """Pooled labeled frames for acoustic-model training."""

    features: np.ndarray  # (N, D)
    labels: np.ndarray    # (N,)


#: Noise levels cycled across training takes (multi-condition training, so
#: the models stay robust from clean audio up to heavy noise).
TRAINING_NOISE_LEVELS = (0.0, 0.02, 0.05, 0.1)


def collect_training_data(
    sentences: Iterable[str],
    synthesizer: Optional[Synthesizer] = None,
    extractor: Optional[FeatureExtractor] = None,
    repetitions: int = 3,
) -> TrainingData:
    """Synthesize sentences (several noisy takes each) and label every frame."""
    extractor = extractor if extractor is not None else FeatureExtractor()
    feature_blocks: List[np.ndarray] = []
    label_blocks: List[np.ndarray] = []
    sentences = list(sentences)
    for repetition in range(repetitions):
        noise = TRAINING_NOISE_LEVELS[repetition % len(TRAINING_NOISE_LEVELS)]
        synth = (
            synthesizer
            if synthesizer is not None
            else Synthesizer(seed=1000 + repetition, noise_level=noise)
        )
        for sentence in sentences:
            waveform, alignment = synth.aligned_synthesize(sentence)
            features = extractor.extract(waveform)
            labels = label_frames(
                alignment, len(features), len(waveform), extractor.config,
                waveform.sample_rate,
            )
            feature_blocks.append(features)
            label_blocks.append(labels)
    if not feature_blocks:
        raise ModelError("no training sentences supplied")
    return TrainingData(np.vstack(feature_blocks), np.concatenate(label_blocks))


def train_gmm_acoustic_model(
    data: TrainingData,
    n_components: int = 2,
    n_iterations: int = 6,
) -> GMMAcousticModel:
    """Fit a per-state diagonal GMM wherever the state has enough frames."""
    gmms: Dict[int, DiagonalGMM] = {}
    for state in range(N_EMISSION_STATES):
        member_rows = data.features[data.labels == state]
        if len(member_rows) < 2 * n_components:
            continue
        components = min(n_components, max(1, len(member_rows) // 8))
        gmms[state] = fit_gmm(member_rows, components, n_iterations, seed=state)
    if not gmms:
        raise ModelError("no emission state had enough training frames")
    fallback = fit_gmm(
        data.features, n_components=min(4, len(data.features) // 8), seed=12345
    )
    return GMMAcousticModel(gmms, fallback=fallback)


def train_dnn_acoustic_model(
    data: TrainingData,
    hidden_sizes: Tuple[int, ...] = (256, 256),
    epochs: int = 20,
    feature_dim: Optional[int] = None,
) -> DNNAcousticModel:
    """Train the hybrid DNN on the same labeled frames."""
    dimension = feature_dim if feature_dim is not None else data.features.shape[1]
    config = DNNConfig(
        input_dim=dimension,
        n_classes=N_EMISSION_STATES,
        hidden_sizes=hidden_sizes,
        epochs=epochs,
    )
    network = DeepNeuralNetwork(config)
    network.fit(data.features, data.labels)
    return DNNAcousticModel(network)
