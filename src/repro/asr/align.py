"""Forced alignment: time-align a known transcript to audio.

Given the spoken text, the decoder graph collapses to a single left-to-right
chain (words in order, optional silence between them); Viterbi over that
chain yields per-word start/end frames.  IPAs use alignments for captioning,
barge-in detection, and training-data labeling — and our acoustic-model
trainer can cross-check its synthesis alignments against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.asr.acoustic import (
    AcousticModel,
    SILENCE,
    STATES_PER_PHONEME,
    phoneme_state_id,
)
from repro.asr.audio import Waveform
from repro.asr.features import FeatureExtractor
from repro.asr.phonemes import pronounce
from repro.errors import DecodingError


@dataclass(frozen=True)
class WordAlignment:
    """One aligned word: frame span and times in seconds."""

    word: str
    start_frame: int
    end_frame: int  # exclusive
    frame_hop: float

    @property
    def start_time(self) -> float:
        return self.start_frame * self.frame_hop

    @property
    def end_time(self) -> float:
        return self.end_frame * self.frame_hop

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class ForcedAligner:
    """Aligns transcripts to waveforms through an acoustic model."""

    def __init__(
        self,
        acoustic_model: AcousticModel,
        feature_extractor: Optional[FeatureExtractor] = None,
        self_loop_prob: float = 0.7,
    ):
        if not 0 < self_loop_prob < 1:
            raise DecodingError("self_loop_prob must be in (0, 1)")
        self.acoustic_model = acoustic_model
        self.feature_extractor = (
            feature_extractor if feature_extractor is not None else FeatureExtractor()
        )
        # self_loop_prob is validated to lie strictly inside (0, 1) above.
        self.log_self = float(np.log(self_loop_prob))  # statcheck: ignore[SC101]
        self.log_adv = float(np.log(1.0 - self_loop_prob))  # statcheck: ignore[SC101]

    def _build_chain(self, words: Sequence[str]) -> Tuple[List[int], List[int], List[bool]]:
        """(emission state ids, word index per state, optional-skip flags).

        The chain is: [SIL] word1 [SIL] word2 [SIL] ... — silence states are
        skippable (the optional flag marks states whose *entry* may be
        bypassed from the previous non-optional state).
        """
        pstates: List[int] = []
        word_of: List[int] = []
        optional: List[bool] = []

        def add_silence() -> None:
            for sub in range(STATES_PER_PHONEME):
                pstates.append(phoneme_state_id(SILENCE, sub))
                word_of.append(-1)
                optional.append(True)

        add_silence()
        for index, word in enumerate(words):
            symbols = pronounce(word)
            if not symbols:
                raise DecodingError(f"word has no pronunciation: {word!r}")
            for symbol in symbols:
                for sub in range(STATES_PER_PHONEME):
                    pstates.append(phoneme_state_id(symbol, sub))
                    word_of.append(index)
                    optional.append(False)
            add_silence()
        return pstates, word_of, optional

    def align(self, waveform: Waveform, text: str) -> List[WordAlignment]:
        """Per-word frame spans for ``text`` spoken in ``waveform``."""
        words = text.split()
        if not words:
            raise DecodingError("empty transcript")
        features = self.feature_extractor.extract(waveform)
        if len(features) == 0:
            raise DecodingError("no feature frames")
        emissions = self.acoustic_model.emission_scores(features)
        pstates, word_of, optional = self._build_chain(words)
        n_states = len(pstates)
        n_frames = len(features)
        scores = emissions[:, pstates]  # (T, S)

        neg_inf = -1e30
        delta = np.full(n_states, neg_inf)
        # Entry states: state 0, plus states reachable by skipping leading
        # optional silence.
        entry = 0
        while True:
            delta[entry] = scores[0, entry]
            if not optional[entry] or entry + 1 >= n_states:
                break
            entry += 1
        backpointer = np.zeros((n_frames, n_states), dtype=np.int8)  # 0=stay,1..k=jump

        # Precompute, for each state, the list of predecessor states: the
        # previous state, plus skips over optional silence runs.
        predecessors: List[List[int]] = [[] for _ in range(n_states)]
        for state in range(1, n_states):
            predecessors[state].append(state - 1)
            back = state - 1
            while back >= 0 and optional[back]:
                back -= 1
                if back >= 0:
                    predecessors[state].append(back)

        choice = np.zeros((n_frames, n_states), dtype=np.int16)
        for t in range(1, n_frames):
            new_delta = np.full(n_states, neg_inf)
            for state in range(n_states):
                best = delta[state] + self.log_self
                best_prev = state
                for previous in predecessors[state]:
                    candidate = delta[previous] + self.log_adv
                    if candidate > best:
                        best = candidate
                        best_prev = previous
                new_delta[state] = best + scores[t, state]
                choice[t, state] = best_prev
            delta = new_delta

        # Terminal: last state, or skip back over trailing optional silence.
        terminal = n_states - 1
        best_terminal = terminal
        best_score = delta[terminal]
        back = terminal
        while back >= 0 and optional[back]:
            back -= 1
            if back >= 0 and delta[back] > best_score:
                best_score = delta[back]
                best_terminal = back
        if best_score <= neg_inf / 2:
            raise DecodingError("alignment failed (transcript/audio mismatch?)")

        # Backtrace the state path.
        path = np.empty(n_frames, dtype=np.int64)
        path[-1] = best_terminal
        for t in range(n_frames - 1, 0, -1):
            path[t - 1] = choice[t, path[t]]

        # Collapse to word spans.
        hop = self.feature_extractor.config.frame_hop
        alignments: List[WordAlignment] = []
        current_word = -1
        start_frame = 0
        for t in range(n_frames):
            word_index = word_of[path[t]]
            if word_index != current_word:
                if current_word >= 0:
                    alignments.append(
                        WordAlignment(words[current_word], start_frame, t, hop)
                    )
                current_word = word_index
                start_frame = t
        if current_word >= 0:
            alignments.append(
                WordAlignment(words[current_word], start_frame, n_frames, hop)
            )
        return alignments
