"""Automatic Speech Recognition service (Sphinx/Kaldi/RASR replacement).

The full pipeline: :class:`Synthesizer` (test audio) → :class:`FeatureExtractor`
(MFCC) → :class:`GMMAcousticModel` or :class:`DNNAcousticModel` (scoring) →
:class:`Decoder` (HMM Viterbi search with a bigram LM).
"""

from repro.asr.align import ForcedAligner, WordAlignment
from repro.asr.evaluate import (
    WERResult,
    evaluate_wer,
    noise_robustness_sweep,
    word_edit_distance,
)
from repro.asr.quantize import QuantizedDNN, agreement, quantize
from repro.asr.streaming import StreamingDecoder, StreamingFeatureExtractor
from repro.asr.vad import (
    EndpointConfig,
    SpeechSegment,
    StreamingEndpointer,
    VADConfig,
    VoiceActivityDetector,
)
from repro.asr.acoustic import (
    DNNAcousticModel,
    GMMAcousticModel,
    N_EMISSION_STATES,
    STATES_PER_PHONEME,
    TrainingData,
    collect_training_data,
    phoneme_state_id,
    train_dnn_acoustic_model,
    train_gmm_acoustic_model,
)
from repro.asr.audio import SAMPLE_RATE, Synthesizer, Waveform
from repro.asr.decoder import DecodeResult, Decoder
from repro.asr.dnn import DeepNeuralNetwork, DNNConfig
from repro.asr.features import FeatureConfig, FeatureExtractor
from repro.asr.gmm import DiagonalGMM, fit_gmm, score_naive
from repro.asr.lm import BigramLanguageModel, TrigramLanguageModel, rescore_nbest
from repro.asr.phonemes import N_PHONEMES, PHONEMES, pronounce

__all__ = [
    "BigramLanguageModel",
    "ForcedAligner",
    "QuantizedDNN",
    "WERResult",
    "WordAlignment",
    "agreement",
    "evaluate_wer",
    "noise_robustness_sweep",
    "quantize",
    "word_edit_distance",
    "DNNAcousticModel",
    "DNNConfig",
    "DecodeResult",
    "Decoder",
    "DeepNeuralNetwork",
    "DiagonalGMM",
    "FeatureConfig",
    "FeatureExtractor",
    "GMMAcousticModel",
    "N_EMISSION_STATES",
    "N_PHONEMES",
    "PHONEMES",
    "SAMPLE_RATE",
    "STATES_PER_PHONEME",
    "EndpointConfig",
    "SpeechSegment",
    "StreamingDecoder",
    "StreamingEndpointer",
    "StreamingFeatureExtractor",
    "VADConfig",
    "VoiceActivityDetector",
    "Synthesizer",
    "TrainingData",
    "TrigramLanguageModel",
    "rescore_nbest",
    "Waveform",
    "collect_training_data",
    "fit_gmm",
    "phoneme_state_id",
    "pronounce",
    "score_naive",
    "train_dnn_acoustic_model",
    "train_gmm_acoustic_model",
]
