"""Energy-based voice activity detection (VAD).

IPAs run a cheap VAD ahead of the recognizer: it gates what audio is sent
to the server (the paper's mobile side sends *compressed recordings of
voice commands*, not an open microphone).  This detector tracks frame
energy against an adaptive noise floor with hangover smoothing, and can
trim or segment a waveform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.asr.audio import Waveform
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VADConfig:
    """Detector parameters."""

    frame_length: float = 0.02     # seconds per analysis frame
    threshold_db: float = 9.0      # speech must exceed floor by this much
    hangover_frames: int = 5       # frames speech persists after energy drops
    floor_percentile: float = 20.0  # noise-floor estimate percentile
    #: Ceiling on the estimated noise floor: recordings that are wall-to-wall
    #: speech have no quiet frames, so the percentile alone would sit inside
    #: the speech band and suppress everything.
    max_floor_db: float = -35.0

    def __post_init__(self) -> None:
        if self.frame_length <= 0:
            raise ConfigurationError("frame_length must be positive")
        if self.hangover_frames < 0:
            raise ConfigurationError("hangover_frames must be >= 0")
        if not 0 < self.floor_percentile < 100:
            raise ConfigurationError("floor_percentile must be in (0, 100)")


@dataclass(frozen=True)
class SpeechSegment:
    """One detected speech region, in seconds."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class VoiceActivityDetector:
    """Adaptive energy VAD over fixed frames."""

    def __init__(self, config: VADConfig = VADConfig()):
        self.config = config

    def frame_energies_db(self, waveform: Waveform) -> np.ndarray:
        """Per-frame RMS energy in dB (floored at -100 dB)."""
        size = max(int(self.config.frame_length * waveform.sample_rate), 1)
        n_frames = max(len(waveform.samples) // size, 1)
        trimmed = waveform.samples[: n_frames * size]
        frames = trimmed.reshape(n_frames, size) if len(trimmed) >= size else np.zeros((1, size))
        rms = np.sqrt((frames**2).mean(axis=1))
        return 20.0 * np.log10(np.maximum(rms, 1e-5))

    def speech_mask(self, waveform: Waveform) -> np.ndarray:
        """Boolean per-frame speech/silence decision with hangover."""
        energies = self.frame_energies_db(waveform)
        floor = min(
            float(np.percentile(energies, self.config.floor_percentile)),
            self.config.max_floor_db,
        )
        raw = energies > floor + self.config.threshold_db
        mask = raw.copy()
        hang = 0
        for index in range(len(raw)):
            if raw[index]:
                hang = self.config.hangover_frames
            elif hang > 0:
                mask[index] = True
                hang -= 1
        return mask

    def segments(self, waveform: Waveform) -> List[SpeechSegment]:
        """Contiguous speech regions, in seconds."""
        mask = self.speech_mask(waveform)
        frame_seconds = self.config.frame_length
        result: List[SpeechSegment] = []
        start = None
        for index, active in enumerate(mask):
            if active and start is None:
                start = index
            elif not active and start is not None:
                result.append(SpeechSegment(start * frame_seconds, index * frame_seconds))
                start = None
        if start is not None:
            result.append(SpeechSegment(start * frame_seconds, len(mask) * frame_seconds))
        return result

    def trim(self, waveform: Waveform, padding: float = 0.05) -> Waveform:
        """Waveform cut to [first speech - padding, last speech + padding].

        Returns the input unchanged when no speech is detected.
        """
        found = self.segments(waveform)
        if not found:
            return waveform
        start = max(found[0].start - padding, 0.0)
        end = min(found[-1].end + padding, waveform.duration)
        lo = int(start * waveform.sample_rate)
        hi = max(int(end * waveform.sample_rate), lo + 1)
        return Waveform(waveform.samples[lo:hi], waveform.sample_rate)

    def speech_fraction(self, waveform: Waveform) -> float:
        """Fraction of frames judged to be speech."""
        mask = self.speech_mask(waveform)
        return float(mask.mean()) if len(mask) else 0.0


@dataclass(frozen=True)
class EndpointConfig:
    """Parameters of the streaming endpointer.

    ``vad`` supplies the frame/threshold/floor model shared with the batch
    detector; ``min_trailing_silence`` is how many consecutive non-speech
    frames (after speech has been heard) close the utterance — the classic
    endpointing hangover, distinct from the batch detector's smoothing
    hangover.
    """

    vad: VADConfig = VADConfig()
    min_trailing_silence: int = 15  # frames (0.02 s each → 300 ms)

    def __post_init__(self) -> None:
        if self.min_trailing_silence < 1:
            raise ConfigurationError("min_trailing_silence must be >= 1")


class StreamingEndpointer:
    """Causal utterance endpointing over arriving audio chunks.

    The gateway feeds every chunk through :meth:`push` and polls
    :attr:`endpointed`; the decision is *when to finalize*, never which
    audio to decode — the decoder always sees the full stream, so
    endpointing cannot perturb the transcript (the streaming-equivalence
    guarantee in ``docs/STREAMING.md``).

    The detector is the causal twin of :class:`VoiceActivityDetector`: per
    20 ms frame RMS energy against an adaptive floor (the running
    ``floor_percentile`` of all energies heard so far, capped at
    ``max_floor_db``).  Speech raises the trigger; ``min_trailing_silence``
    consecutive quiet frames after speech mark the endpoint.  Deterministic:
    decisions depend only on the samples, never on wall time.
    """

    def __init__(self, config: EndpointConfig = EndpointConfig(),
                 sample_rate: int = 16000):
        self.config = config
        self.sample_rate = sample_rate
        self._frame = max(int(config.vad.frame_length * sample_rate), 1)
        self.reset()

    def reset(self) -> None:
        """Forget all audio (new utterance on the same channel)."""
        self._buffer = np.zeros(0)
        self._energies: List[float] = []
        self.speech_started = False
        self.endpointed = False
        self._trailing_silence = 0

    @property
    def frames_seen(self) -> int:
        return len(self._energies)

    def push(self, samples: np.ndarray) -> bool:
        """Add audio; returns the (possibly just-flipped) endpoint flag."""
        samples = np.asarray(samples, dtype=float).ravel()
        if len(samples):
            self._buffer = np.concatenate([self._buffer, samples])
        n_frames = len(self._buffer) // self._frame
        if n_frames == 0 or self.endpointed:
            return self.endpointed
        frames = self._buffer[: n_frames * self._frame].reshape(
            n_frames, self._frame
        )
        self._buffer = self._buffer[n_frames * self._frame :]
        rms = np.sqrt((frames**2).mean(axis=1))
        energies = 20.0 * np.log10(np.maximum(rms, 1e-5))
        vad = self.config.vad
        for energy in energies:
            self._energies.append(float(energy))
            floor = min(
                float(np.percentile(self._energies, vad.floor_percentile)),
                vad.max_floor_db,
            )
            if energy > floor + vad.threshold_db:
                self.speech_started = True
                self._trailing_silence = 0
            elif self.speech_started:
                self._trailing_silence += 1
                if self._trailing_silence >= self.config.min_trailing_silence:
                    self.endpointed = True
                    break
        return self.endpointed
