"""Int8 weight quantization for the acoustic DNN.

DNN accelerators (the DianNao line the paper cites) run low-precision
arithmetic; this module quantizes a trained
:class:`~repro.asr.dnn.DeepNeuralNetwork` to per-layer symmetric int8 and
scores frames with integer weights, so the accuracy cost of that design
choice is measurable (see ``bench_ablation_quantization``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.asr.dnn import DeepNeuralNetwork, _log_softmax, _relu
from repro.errors import ModelError


@dataclass
class QuantizedLayer:
    """One layer: int8 weights plus the float scale that dequantizes them."""

    weights_q: np.ndarray  # int8, (fan_in, fan_out)
    scale: float           # weight ~= weights_q * scale
    bias: np.ndarray       # float (biases are cheap; kept in float)


class QuantizedDNN:
    """An int8-weight version of a trained DNN.

    Activations stay in float (weight-only quantization, the common
    inference deployment); matmuls run on the int8 weights cast through the
    per-layer scale.
    """

    def __init__(self, network: DeepNeuralNetwork):
        self.config = network.config
        self.log_priors = network.log_priors.copy()
        self.layers: List[QuantizedLayer] = []
        for weights, bias in zip(network.weights, network.biases):
            peak = float(np.abs(weights).max())
            if peak == 0.0:
                raise ModelError("cannot quantize an all-zero layer")
            scale = peak / 127.0
            quantized = np.clip(np.round(weights / scale), -127, 127).astype(np.int8)
            self.layers.append(QuantizedLayer(quantized, scale, bias.copy()))

    def forward(self, stacked: np.ndarray) -> np.ndarray:
        activation = stacked
        last = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            activation = (activation @ layer.weights_q.astype(np.float64)) * layer.scale
            activation = activation + layer.bias
            if index != last:
                activation = _relu(activation)
        return activation

    def stack_context(self, features: np.ndarray) -> np.ndarray:
        # Delegate to an uninitialized shell network for the same stacking.
        shell = DeepNeuralNetwork.__new__(DeepNeuralNetwork)
        shell.config = self.config
        return DeepNeuralNetwork.stack_context(shell, features)

    def log_posteriors(self, features: np.ndarray) -> np.ndarray:
        return _log_softmax(self.forward(self.stack_context(features)))

    def emission_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        return self.log_posteriors(features) - self.log_priors[None, :]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.log_posteriors(features).argmax(axis=1)

    @property
    def model_bytes(self) -> int:
        """Weight storage in bytes (the compression win: 8x vs float64)."""
        return sum(layer.weights_q.nbytes for layer in self.layers)


def quantize(network: DeepNeuralNetwork) -> QuantizedDNN:
    """Quantize a trained DNN to int8 weights."""
    return QuantizedDNN(network)


def agreement(network: DeepNeuralNetwork, quantized: QuantizedDNN, features: np.ndarray) -> float:
    """Fraction of frames where float and int8 models pick the same class."""
    return float(
        (network.predict(features) == quantized.predict(features)).mean()
    )
