"""MFCC feature extraction — the ASR front-end (paper Figure 4, left box).

Standard pipeline: pre-emphasis → 25 ms Hamming frames at 10 ms hop → power
spectrum → mel filterbank → log → DCT-II → first ``n_coefficients`` cepstra,
optionally with delta features appended.  Implemented directly on numpy so
the whole front-end is self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asr.audio import Waveform
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FeatureConfig:
    """Front-end parameters; defaults match common ASR setups."""

    frame_length: float = 0.025   # seconds
    frame_hop: float = 0.010      # seconds
    n_filters: int = 26
    n_coefficients: int = 13
    pre_emphasis: float = 0.97
    low_freq: float = 100.0
    high_freq: float = 7000.0
    add_deltas: bool = True
    cmvn: bool = False  # per-utterance cepstral mean-variance normalization

    def __post_init__(self) -> None:
        if self.frame_length <= 0 or self.frame_hop <= 0:
            raise ConfigurationError("frame length/hop must be positive")
        if self.n_coefficients > self.n_filters:
            raise ConfigurationError("need n_coefficients <= n_filters")
        if not 0 <= self.pre_emphasis < 1:
            raise ConfigurationError("pre_emphasis must be in [0, 1)")
        if not 0 < self.low_freq < self.high_freq:
            raise ConfigurationError("require 0 < low_freq < high_freq")

    @property
    def dimension(self) -> int:
        """Final feature dimension (doubles when deltas are appended)."""
        return self.n_coefficients * (2 if self.add_deltas else 1)


def hz_to_mel(hz):
    return 2595.0 * np.log10(1.0 + np.asarray(hz, dtype=float) / 700.0)


def mel_to_hz(mel):
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=float) / 2595.0) - 1.0)


def mel_filterbank(n_filters: int, n_fft: int, sample_rate: int, low: float, high: float) -> np.ndarray:
    """(n_filters, n_fft//2+1) triangular filters evenly spaced on the mel scale."""
    high = min(high, sample_rate / 2.0)
    mel_points = np.linspace(hz_to_mel(low), hz_to_mel(high), n_filters + 2)
    hz_points = mel_to_hz(mel_points)
    bins = np.floor((n_fft + 1) * hz_points / sample_rate).astype(int)
    bank = np.zeros((n_filters, n_fft // 2 + 1))
    for index in range(n_filters):
        left, center, right = bins[index], bins[index + 1], bins[index + 2]
        center = max(center, left + 1)
        right = max(right, center + 1)
        for freq_bin in range(left, center):
            bank[index, freq_bin] = (freq_bin - left) / (center - left)
        for freq_bin in range(center, min(right, bank.shape[1])):
            bank[index, freq_bin] = (right - freq_bin) / (right - center)
    return bank


def dct_matrix(n_output: int, n_input: int) -> np.ndarray:
    """Orthonormal DCT-II matrix (n_output, n_input)."""
    k = np.arange(n_output)[:, None]
    n = np.arange(n_input)[None, :]
    matrix = np.cos(np.pi * k * (2 * n + 1) / (2 * n_input))
    matrix *= np.sqrt(2.0 / n_input)
    matrix[0] /= np.sqrt(2.0)
    return matrix


def frame_signal(samples: np.ndarray, frame_size: int, hop: int) -> np.ndarray:
    """(n_frames, frame_size) view of overlapping frames (zero-padded tail)."""
    if len(samples) < frame_size:
        samples = np.pad(samples, (0, frame_size - len(samples)))
    n_frames = 1 + (len(samples) - frame_size) // hop
    indices = np.arange(frame_size)[None, :] + hop * np.arange(n_frames)[:, None]
    return samples[indices]


def compute_deltas(features: np.ndarray, window: int = 2) -> np.ndarray:
    """First-order regression deltas over ±``window`` frames."""
    padded = np.pad(features, ((window, window), (0, 0)), mode="edge")
    numerator = np.zeros_like(features)
    for offset in range(1, window + 1):
        numerator += offset * (
            padded[window + offset : window + offset + len(features)]
            - padded[window - offset : window - offset + len(features)]
        )
    denominator = 2.0 * sum(offset**2 for offset in range(1, window + 1))
    return numerator / denominator


class FeatureExtractor:
    """Waveform → (n_frames, dimension) MFCC matrix."""

    def __init__(self, config: FeatureConfig = FeatureConfig()):
        self.config = config
        self._bank_cache = {}

    def extract(self, waveform: Waveform) -> np.ndarray:
        config = self.config
        rate = waveform.sample_rate
        samples = waveform.samples.astype(float)
        if config.pre_emphasis > 0 and len(samples) > 1:
            samples = np.concatenate(
                [samples[:1], samples[1:] - config.pre_emphasis * samples[:-1]]
            )
        frame_size = int(config.frame_length * rate)
        hop = int(config.frame_hop * rate)
        frames = frame_signal(samples, frame_size, hop)
        frames = frames * np.hamming(frame_size)[None, :]

        n_fft = 1 << (frame_size - 1).bit_length()
        spectrum = np.fft.rfft(frames, n=n_fft, axis=1)
        power = (np.abs(spectrum) ** 2) / n_fft

        bank = self._filterbank(n_fft, rate)
        energies = power @ bank.T
        log_energies = np.log(np.maximum(energies, 1e-12))
        dct = dct_matrix(config.n_coefficients, config.n_filters)
        cepstra = log_energies @ dct.T
        if config.cmvn and len(cepstra) > 1:
            mean = cepstra.mean(axis=0, keepdims=True)
            std = cepstra.std(axis=0, keepdims=True)
            cepstra = (cepstra - mean) / np.maximum(std, 1e-8)
        if config.add_deltas:
            cepstra = np.hstack([cepstra, compute_deltas(cepstra)])
        return cepstra

    def _filterbank(self, n_fft: int, rate: int) -> np.ndarray:
        key = (n_fft, rate)
        if key not in self._bank_cache:
            self._bank_cache[key] = mel_filterbank(
                self.config.n_filters, n_fft, rate, self.config.low_freq, self.config.high_freq
            )
        return self._bank_cache[key]

    def frames_for_samples(self, n_samples: int, rate: int) -> int:
        """How many frames :meth:`extract` yields for ``n_samples`` samples."""
        frame_size = int(self.config.frame_length * rate)
        hop = int(self.config.frame_hop * rate)
        return 1 + max(n_samples - frame_size, 0) // hop
