"""Waveform container and the formant speech synthesizer.

We have no speech recordings, so the voice front-end is driven by synthetic
speech: each phoneme is rendered as a sum of sinusoids at its formant
frequencies (voiced) or band-shaped noise (unvoiced), with jitter in duration,
pitch, and amplitude per utterance.  The synthesizer and the recognizer share
the phoneme inventory but are otherwise independent — recognition has to
recover the text from the waveform through the full MFCC/GMM(or DNN)/HMM
path, which is the compute pipeline the paper profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.asr.phonemes import PHONEME_BY_SYMBOL, Phoneme, pronounce
from repro.errors import ConfigurationError

SAMPLE_RATE = 16000


@dataclass(frozen=True)
class Waveform:
    """Mono PCM audio: float64 samples in [-1, 1] plus a sample rate."""

    samples: np.ndarray
    sample_rate: int = SAMPLE_RATE

    def __post_init__(self) -> None:
        if self.samples.ndim != 1:
            raise ConfigurationError("waveform must be 1-D")
        if self.sample_rate <= 0:
            raise ConfigurationError("sample rate must be positive")

    @property
    def duration(self) -> float:
        return len(self.samples) / self.sample_rate

    def __len__(self) -> int:
        return len(self.samples)


class Synthesizer:
    """Formant synthesizer turning text into a :class:`Waveform`.

    Parameters
    ----------
    phone_duration:
        Mean seconds per phoneme; each instance jitters ±20%.
    noise_level:
        Standard deviation of additive white noise, relative to signal.
    seed:
        Seed for the per-instance jitter; two calls with the same seed and
        text produce identical audio.
    """

    def __init__(
        self,
        phone_duration: float = 0.10,
        noise_level: float = 0.02,
        seed: int = 1234,
    ):
        if phone_duration <= 0:
            raise ConfigurationError("phone_duration must be positive")
        if noise_level < 0:
            raise ConfigurationError("noise_level must be >= 0")
        self.phone_duration = phone_duration
        self.noise_level = noise_level
        self._rng = np.random.default_rng(seed)

    def synthesize_phoneme(self, phoneme: Phoneme, duration: Optional[float] = None) -> np.ndarray:
        """Render one phoneme to samples."""
        duration = duration if duration is not None else self.phone_duration
        n = max(int(duration * SAMPLE_RATE), 1)
        t = np.arange(n) / SAMPLE_RATE
        signal = np.zeros(n, dtype=np.float64)
        amplitudes = (1.0, 0.7, 0.4)
        if phoneme.voiced:
            for formant, amplitude in zip(phoneme.formants, amplitudes):
                jittered = formant * (1.0 + self._rng.normal(0.0, 0.01))
                phase = self._rng.uniform(0.0, 2.0 * np.pi)
                signal += amplitude * np.sin(2.0 * np.pi * jittered * t + phase)
        else:
            # Unvoiced: modulated noise concentrated near the formants.
            noise = self._rng.normal(0.0, 1.0, n)
            for formant, amplitude in zip(phoneme.formants, amplitudes):
                carrier = np.sin(2.0 * np.pi * formant * t)
                signal += amplitude * noise * carrier
        # Attack/decay envelope avoids clicks at phone boundaries.
        envelope = np.minimum(1.0, np.minimum(np.arange(n), np.arange(n)[::-1]) / (0.01 * SAMPLE_RATE))
        signal *= envelope
        peak = np.abs(signal).max()
        if peak > 0:
            signal /= peak * 1.25
        return signal

    def synthesize_phoneme_sequence(self, symbols: Sequence[str]) -> Waveform:
        pieces: List[np.ndarray] = []
        for symbol in symbols:
            phoneme = PHONEME_BY_SYMBOL[symbol]
            duration = self.phone_duration * float(self._rng.uniform(0.8, 1.2))
            pieces.append(self.synthesize_phoneme(phoneme, duration))
        if not pieces:
            return Waveform(np.zeros(1))
        samples = np.concatenate(pieces)
        if self.noise_level > 0:
            samples = samples + self._rng.normal(0.0, self.noise_level, len(samples))
        return Waveform(samples)

    def synthesize(self, text: str) -> Waveform:
        """Render a sentence; a short pause separates words.

        >>> wave = Synthesizer().synthesize("set my alarm")
        >>> wave.duration > 0.5
        True
        """
        pieces: List[np.ndarray] = []
        pause = np.zeros(int(0.03 * SAMPLE_RATE))
        for word in text.split():
            symbols = pronounce(word)
            if not symbols:
                continue
            wave = self.synthesize_phoneme_sequence(symbols)
            pieces.append(wave.samples)
            pieces.append(pause)
        if not pieces:
            return Waveform(np.zeros(1))
        return Waveform(np.concatenate(pieces))

    def aligned_synthesize(self, text: str):
        """Synthesize and return (waveform, [(phoneme_symbol, start, end)]).

        Sample-accurate alignments let the acoustic-model trainer label
        frames with their generating phoneme without running recognition.
        """
        pieces: List[np.ndarray] = []
        alignment: List[tuple] = []
        pause = np.zeros(int(0.03 * SAMPLE_RATE))
        cursor = 0
        for word in text.split():
            for symbol in pronounce(word):
                phoneme = PHONEME_BY_SYMBOL[symbol]
                duration = self.phone_duration * float(self._rng.uniform(0.8, 1.2))
                samples = self.synthesize_phoneme(phoneme, duration)
                alignment.append((symbol, cursor, cursor + len(samples)))
                pieces.append(samples)
                cursor += len(samples)
            pieces.append(pause)
            cursor += len(pause)
        if not pieces:
            return Waveform(np.zeros(1)), []
        samples = np.concatenate(pieces)
        if self.noise_level > 0:
            samples = samples + self._rng.normal(0.0, self.noise_level, len(samples))
        return Waveform(samples), alignment
