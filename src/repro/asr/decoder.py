"""Viterbi token-passing decoder over a word-loop HMM graph (paper Figure 4).

The decoding graph concatenates each vocabulary word's phoneme HMM states
(three per phoneme, left-to-right with self-loops) and appends an optional
silence tail that absorbs inter-word pauses.  Cross-word transitions carry
bigram language-model scores; per-state token histories record word links so
the transcript can be read back after the final frame.

This is the "HMM search" the paper pairs with GMM or DNN scoring — the
acoustic model is swappable (:class:`~repro.asr.acoustic.AcousticModel`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.asr.acoustic import (
    AcousticModel,
    SILENCE,
    STATES_PER_PHONEME,
    phoneme_state_id,
)
from repro.asr.audio import Waveform
from repro.asr.features import FeatureExtractor
from repro.asr.lm import BigramLanguageModel
from repro.asr.phonemes import pronounce
from repro.profiling import Profiler
from repro.errors import DecodingError


@dataclass(frozen=True)
class DecodeResult:
    """Decoder output: transcript plus bookkeeping for analysis."""

    text: str
    words: Tuple[str, ...]
    log_score: float
    n_frames: int


@dataclass
class _Graph:
    """Flattened decoding graph arrays."""

    pstate: np.ndarray        # (S,) emission-state id per graph state
    word_of_state: np.ndarray  # (S,)
    is_start: np.ndarray      # (S,) bool: first state of a word chain
    starts: np.ndarray        # (V,) graph index of each word's first state
    phone_ends: np.ndarray    # (V,) last phoneme state of each word
    sil_ends: np.ndarray      # (V,) last silence-tail state of each word
    lead_sil_end: int = -1    # last state of the utterance-initial silence


def _build_graph(vocabulary: Sequence[str]) -> _Graph:
    pstate: List[int] = []
    word_of_state: List[int] = []
    is_start: List[bool] = []
    starts: List[int] = []
    phone_ends: List[int] = []
    sil_ends: List[int] = []
    # Utterance-initial silence: real recordings do not start mid-word.
    for sub_state in range(STATES_PER_PHONEME):
        pstate.append(phoneme_state_id(SILENCE, sub_state))
        word_of_state.append(-1)
        is_start.append(False)
    lead_sil_end = len(pstate) - 1
    for word_index, word in enumerate(vocabulary):
        symbols = pronounce(word)
        if not symbols:
            raise DecodingError(f"word has no pronunciation: {word!r}")
        starts.append(len(pstate))
        for symbol in symbols:
            for sub_state in range(STATES_PER_PHONEME):
                pstate.append(phoneme_state_id(symbol, sub_state))
                word_of_state.append(word_index)
                is_start.append(len(pstate) - 1 == starts[-1])
        phone_ends.append(len(pstate) - 1)
        for sub_state in range(STATES_PER_PHONEME):
            pstate.append(phoneme_state_id(SILENCE, sub_state))
            word_of_state.append(word_index)
            is_start.append(False)
        sil_ends.append(len(pstate) - 1)
    return _Graph(
        pstate=np.array(pstate),
        word_of_state=np.array(word_of_state),
        is_start=np.array(is_start, dtype=bool),
        starts=np.array(starts),
        phone_ends=np.array(phone_ends),
        sil_ends=np.array(sil_ends),
        lead_sil_end=lead_sil_end,
    )


class Decoder:
    """Large-vocabulary(ish) continuous speech decoder.

    Parameters
    ----------
    acoustic_model:
        Emission scorer (GMM- or DNN-based).
    language_model:
        Bigram LM; its vocabulary becomes the decoding vocabulary unless
        ``vocabulary`` narrows it.
    lm_weight / insertion_penalty / self_loop_prob / beam:
        Standard decoding knobs.  ``beam`` prunes states more than that many
        log units below the frame-best token (None disables pruning).
    """

    def __init__(
        self,
        acoustic_model: AcousticModel,
        language_model: BigramLanguageModel,
        vocabulary: Optional[Sequence[str]] = None,
        feature_extractor: Optional[FeatureExtractor] = None,
        lm_weight: float = 10.0,
        insertion_penalty: float = -2.0,
        self_loop_prob: float = 0.7,
        beam: Optional[float] = 200.0,
    ):
        if not 0 < self_loop_prob < 1:
            raise DecodingError("self_loop_prob must be in (0, 1)")
        self.acoustic_model = acoustic_model
        self.language_model = language_model
        self.vocabulary = list(vocabulary) if vocabulary is not None else list(
            language_model.vocabulary
        )
        if not self.vocabulary:
            raise DecodingError("empty decoding vocabulary")
        self.feature_extractor = (
            feature_extractor if feature_extractor is not None else FeatureExtractor()
        )
        self.lm_weight = lm_weight
        self.insertion_penalty = insertion_penalty
        # self_loop_prob is validated to lie strictly inside (0, 1) above.
        self.log_self = math.log(self_loop_prob)  # statcheck: ignore[SC101]
        self.log_adv = math.log(1.0 - self_loop_prob)  # statcheck: ignore[SC101]
        self.beam = beam

        self._graph = _build_graph(self.vocabulary)
        self._lm_matrix = language_model.transition_matrix(self.vocabulary)
        self._lm_eos = language_model.eos_vector(self.vocabulary)

    # -- public API ---------------------------------------------------------------

    def decode_waveform(
        self, waveform: Waveform, profiler: Optional[Profiler] = None
    ) -> DecodeResult:
        """Recognize a waveform end to end (features → scores → search).

        Profiled sections: ``asr.features``, ``asr.scoring`` (GMM or DNN),
        ``asr.search`` (HMM Viterbi) — the breakdown of paper Figure 9.
        """
        profiler = profiler if profiler is not None else Profiler()
        with profiler.section("asr.features"):
            features = self.feature_extractor.extract(waveform)
        return self.decode_features(features, profiler=profiler)

    def decode_features(
        self, features: np.ndarray, profiler: Optional[Profiler] = None
    ) -> DecodeResult:
        """Recognize pre-extracted feature frames."""
        if len(features) == 0:
            raise DecodingError("no feature frames to decode")
        profiler = profiler if profiler is not None else Profiler()
        with profiler.section("asr.scoring"):
            emissions = self.acoustic_model.emission_scores(features)
        with profiler.section("asr.search"):
            return self._search(emissions)

    def decode_nbest(
        self, waveform: Waveform, n: int = 5
    ) -> List["DecodeResult"]:
        """Approximate n-best list: alternatives differing in the last word.

        Hypotheses are ranked by total path score; the first entry equals
        :meth:`decode_waveform`'s result.  Use :func:`nbest_confidences` to
        turn the scores into a posterior-style confidence distribution.
        """
        if n < 1:
            raise DecodingError("n must be >= 1")
        features = self.feature_extractor.extract(waveform)
        if len(features) == 0:
            raise DecodingError("no feature frames to decode")
        emissions = self.acoustic_model.emission_scores(features)
        return self._search(emissions, n_best=n)

    # -- Viterbi token passing ------------------------------------------------------

    def _search(self, emissions: np.ndarray, n_best: int = 1):
        graph = self._graph
        n_frames = emissions.shape[0]
        n_states = len(graph.pstate)
        n_words = len(self.vocabulary)
        frame_scores = emissions[:, graph.pstate]  # (T, S)

        neg_inf = -1e30
        delta = np.full(n_states, neg_inf)
        hist = np.full(n_states, -1, dtype=np.int64)
        # Link table: (word_index, previous_link_id) per completed word.
        links: List[Tuple[int, int]] = []

        # Frame 0: tokens enter every word start from BOS, or the initial
        # silence chain (audio that opens with a pause).
        bos_scores = self.lm_weight * self._lm_matrix[n_words] + self.insertion_penalty
        delta[graph.starts] = frame_scores[0, graph.starts] + bos_scores
        delta[0] = frame_scores[0, 0]  # first lead-silence state

        for t in range(1, n_frames):
            stay = delta + self.log_self
            advance = np.empty(n_states)
            advance[0] = neg_inf
            advance[1:] = delta[:-1] + self.log_adv
            advance[graph.is_start] = neg_inf

            take_advance = advance > stay
            new_delta = np.where(take_advance, advance, stay)
            new_hist = hist.copy()
            source = np.where(take_advance)[0]
            new_hist[source] = hist[source - 1]

            # Cross-word transitions use the *previous* frame's word-end tokens.
            end_from_phone = delta[graph.phone_ends]
            end_from_sil = delta[graph.sil_ends]
            use_sil = end_from_sil > end_from_phone
            end_scores = np.where(use_sil, end_from_sil, end_from_phone)
            end_states = np.where(use_sil, graph.sil_ends, graph.phone_ends)

            # entry[w2] = max_w1 end_scores[w1] + lmW * lm[w1, w2]
            candidate = end_scores[:, None] + self.lm_weight * self._lm_matrix[:n_words]
            best_prev = np.argmax(candidate, axis=0)
            entry = candidate[best_prev, np.arange(n_words)] + self.insertion_penalty
            entry_delta = entry + self.log_adv
            # Entry from the utterance-initial silence carries the BOS prior.
            bos_entry = (
                delta[graph.lead_sil_end]
                + self.lm_weight * self._lm_matrix[n_words]
                + self.insertion_penalty
                + self.log_adv
            )

            start_states = graph.starts
            better = np.maximum(entry_delta, bos_entry) > new_delta[start_states]
            for word_index in np.where(better)[0]:
                state = start_states[word_index]
                if bos_entry[word_index] >= entry_delta[word_index]:
                    new_delta[state] = bos_entry[word_index]
                    new_hist[state] = hist[graph.lead_sil_end]
                else:
                    prev_word = int(best_prev[word_index])
                    prev_end_state = int(end_states[prev_word])
                    links.append((prev_word, int(hist[prev_end_state])))
                    new_delta[state] = entry_delta[word_index]
                    new_hist[state] = len(links) - 1

            new_delta += frame_scores[t]

            if self.beam is not None:
                threshold = new_delta.max() - self.beam
                pruned = new_delta < threshold
                new_delta[pruned] = neg_inf

            delta, hist = new_delta, new_hist

        # Final: best word end plus EOS probability.
        end_from_phone = delta[graph.phone_ends]
        end_from_sil = delta[graph.sil_ends]
        use_sil = end_from_sil > end_from_phone
        end_scores = np.where(use_sil, end_from_sil, end_from_phone)
        end_states = np.where(use_sil, graph.sil_ends, graph.phone_ends)
        final = end_scores + self.lm_weight * self._lm_eos
        order = np.argsort(-final)
        results: List[DecodeResult] = []
        for word_index in order[: max(n_best, 1)]:
            score = float(final[word_index])
            if score <= neg_inf / 2:
                break
            words = self._backtrack(int(hist[end_states[word_index]]), links)
            words.append(self.vocabulary[int(word_index)])
            results.append(
                DecodeResult(
                    text=" ".join(words),
                    words=tuple(words),
                    log_score=score,
                    n_frames=n_frames,
                )
            )
        if not results:
            raise DecodingError("no surviving decoding path (beam too tight?)")
        if n_best == 1:
            return results[0]
        return results

    @staticmethod
    def nbest_confidences(results: Sequence[DecodeResult]) -> List[float]:
        """Softmax the n-best scores into a confidence per hypothesis."""
        if not results:
            return []
        scores = np.array([result.log_score for result in results])
        # Scores scale with frame count; temper by sequence length so the
        # distribution is not a one-hot artifact of huge log ranges.
        scores = scores / max(results[0].n_frames, 1)
        shifted = scores - scores.max()
        weights = np.exp(shifted)
        return list(weights / weights.sum())

    def _backtrack(self, link_id: int, links: List[Tuple[int, int]]) -> List[str]:
        words: List[str] = []
        while link_id >= 0:
            word_index, link_id = links[link_id]
            words.append(self.vocabulary[word_index])
        words.reverse()
        return words
