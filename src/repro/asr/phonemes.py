"""Phoneme inventory and grapheme-to-phoneme lexicon.

A reduced ARPAbet-style inventory keeps the acoustic state space small while
still giving every English-ish word a distinct pronunciation.  The synthesizer
(:mod:`repro.asr.synth`) and the acoustic models share this inventory, so any
word the lexicon can transcribe can be both spoken and recognized.

Each phoneme carries a formant triple (Hz) used for synthesis; the triples are
spread across the speech band so phonemes are spectrally separable after the
MFCC front-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Phoneme:
    """One phoneme: symbol, formant frequencies (Hz), and voicing."""

    symbol: str
    formants: Tuple[float, float, float]
    voiced: bool


#: The inventory.  Formants are stylized but ordered like real vowel charts.
PHONEMES: List[Phoneme] = [
    Phoneme("AA", (730.0, 1090.0, 2440.0), True),   # f-a-ther
    Phoneme("AE", (660.0, 1720.0, 2410.0), True),   # c-a-t
    Phoneme("AH", (520.0, 1190.0, 2390.0), True),   # b-u-t
    Phoneme("AO", (570.0, 840.0, 2410.0), True),    # c-augh-t
    Phoneme("EH", (530.0, 1840.0, 2480.0), True),   # b-e-d
    Phoneme("ER", (490.0, 1350.0, 1690.0), True),   # b-ir-d
    Phoneme("EY", (480.0, 2100.0, 2700.0), True),   # b-ai-t
    Phoneme("IH", (390.0, 1990.0, 2550.0), True),   # b-i-t
    Phoneme("IY", (270.0, 2290.0, 3010.0), True),   # b-ee-t
    Phoneme("OW", (450.0, 900.0, 2300.0), True),    # b-oa-t
    Phoneme("UW", (300.0, 870.0, 2240.0), True),    # b-oo-t
    Phoneme("B", (200.0, 800.0, 1800.0), True),
    Phoneme("D", (250.0, 1700.0, 2600.0), True),
    Phoneme("F", (900.0, 2100.0, 3300.0), False),
    Phoneme("G", (230.0, 1300.0, 2200.0), True),
    Phoneme("HH", (800.0, 1600.0, 2900.0), False),
    Phoneme("K", (350.0, 1500.0, 2500.0), False),
    Phoneme("L", (380.0, 1100.0, 2600.0), True),
    Phoneme("M", (280.0, 1000.0, 2100.0), True),
    Phoneme("N", (320.0, 1400.0, 2300.0), True),
    Phoneme("P", (300.0, 900.0, 2000.0), False),
    Phoneme("R", (420.0, 1300.0, 1600.0), True),
    Phoneme("S", (1200.0, 2500.0, 3600.0), False),
    Phoneme("T", (400.0, 1800.0, 2900.0), False),
    Phoneme("V", (250.0, 1100.0, 2400.0), True),
    Phoneme("W", (330.0, 700.0, 2200.0), True),
    Phoneme("Y", (290.0, 2000.0, 2800.0), True),
    Phoneme("Z", (1000.0, 2200.0, 3400.0), True),
    Phoneme("CH", (1100.0, 2300.0, 3200.0), False),
    Phoneme("SH", (1000.0, 1900.0, 3100.0), False),
    Phoneme("TH", (950.0, 1950.0, 3350.0), False),
    Phoneme("NG", (300.0, 1200.0, 2350.0), True),
]

PHONEME_BY_SYMBOL: Dict[str, Phoneme] = {p.symbol: p for p in PHONEMES}
N_PHONEMES = len(PHONEMES)
PHONEME_INDEX: Dict[str, int] = {p.symbol: i for i, p in enumerate(PHONEMES)}

#: Pronunciations for words common in the IPA query input set.  Anything not
#: listed falls back to rule-based grapheme-to-phoneme conversion.
EXCEPTIONS: Dict[str, List[str]] = {
    "the": ["TH", "AH"],
    "of": ["AH", "V"],
    "is": ["IH", "Z"],
    "was": ["W", "AH", "Z"],
    "what": ["W", "AH", "T"],
    "who": ["HH", "UW"],
    "where": ["W", "EH", "R"],
    "when": ["W", "EH", "N"],
    "why": ["W", "IY"],
    "how": ["HH", "AH", "W"],
    "which": ["W", "IH", "CH"],
    "capital": ["K", "AE", "P", "IH", "T", "AH", "L"],
    "president": ["P", "R", "EH", "Z", "IH", "D", "EH", "N", "T"],
    "author": ["AO", "TH", "ER"],
    "my": ["M", "IY"],
    "for": ["F", "AO", "R"],
    "to": ["T", "UW"],
    "set": ["S", "EH", "T"],
    "alarm": ["AH", "L", "AA", "R", "M"],
    "eight": ["EY", "T"],
    "am": ["AE", "M"],
    "close": ["K", "L", "OW", "Z"],
    "this": ["TH", "IH", "S"],
    "does": ["D", "AH", "Z"],
    "restaurant": ["R", "EH", "S", "T", "ER", "AA", "N", "T"],
    "current": ["K", "ER", "EH", "N", "T"],
    "united": ["Y", "UW", "N", "IY", "T", "IH", "D"],
    "states": ["S", "T", "EY", "T", "S"],
    "elected": ["IH", "L", "EH", "K", "T", "IH", "D"],
}

#: Letter-cluster to phoneme rules, applied greedily longest-first.
_G2P_RULES: List[Tuple[str, List[str]]] = [
    ("tion", ["SH", "AH", "N"]),
    ("ight", ["IY", "T"]),
    ("ough", ["OW"]),
    ("augh", ["AO"]),
    ("ch", ["CH"]),
    ("sh", ["SH"]),
    ("th", ["TH"]),
    ("ng", ["NG"]),
    ("ph", ["F"]),
    ("wh", ["W"]),
    ("ck", ["K"]),
    ("qu", ["K", "W"]),
    ("ee", ["IY"]),
    ("oo", ["UW"]),
    ("ou", ["AH", "W"]),
    ("ai", ["EY"]),
    ("ay", ["EY"]),
    ("oa", ["OW"]),
    ("ea", ["IY"]),
    ("a", ["AE"]),
    ("b", ["B"]),
    ("c", ["K"]),
    ("d", ["D"]),
    ("e", ["EH"]),
    ("f", ["F"]),
    ("g", ["G"]),
    ("h", ["HH"]),
    ("i", ["IH"]),
    ("j", ["CH"]),
    ("k", ["K"]),
    ("l", ["L"]),
    ("m", ["M"]),
    ("n", ["N"]),
    ("o", ["OW"]),
    ("p", ["P"]),
    ("r", ["R"]),
    ("s", ["S"]),
    ("t", ["T"]),
    ("u", ["AH"]),
    ("v", ["V"]),
    ("w", ["W"]),
    ("x", ["K", "S"]),
    ("y", ["Y"]),
    ("z", ["Z"]),
]


def grapheme_to_phonemes(word: str) -> List[str]:
    """Rule-based fallback pronunciation for an arbitrary word.

    >>> grapheme_to_phonemes("rome")
    ['R', 'OW', 'M', 'EH']
    """
    word = "".join(char for char in word.lower() if char.isalpha())
    phonemes: List[str] = []
    position = 0
    while position < len(word):
        for cluster, output in _G2P_RULES:
            if word.startswith(cluster, position):
                phonemes.extend(output)
                position += len(cluster)
                break
        else:
            position += 1  # unknown character: skip
    return phonemes


def pronounce(word: str) -> List[str]:
    """Phoneme sequence for ``word``: exception dictionary, then G2P rules."""
    lowered = word.lower()
    if lowered in EXCEPTIONS:
        return list(EXCEPTIONS[lowered])
    if lowered.isdigit():
        return _pronounce_number(lowered)
    return grapheme_to_phonemes(lowered)


_DIGIT_WORDS = {
    "0": "zero", "1": "one", "2": "two", "3": "three", "4": "four",
    "5": "five", "6": "six", "7": "seven", "8": "eight", "9": "nine",
}


def _pronounce_number(digits: str) -> List[str]:
    phonemes: List[str] = []
    for digit in digits:
        phonemes.extend(pronounce(_DIGIT_WORDS[digit]))
    return phonemes
