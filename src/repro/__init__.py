"""Sirius reproduction: an open end-to-end voice & vision personal assistant.

This library reproduces Hauswald et al., "Sirius: An Open End-to-End Voice
and Vision Personal Assistant and Its Implications for Future Warehouse
Scale Computers" (ASPLOS 2015):

- :mod:`repro.core` — the end-to-end IPA pipeline and query taxonomy;
- :mod:`repro.asr`, :mod:`repro.qa`, :mod:`repro.imm`,
  :mod:`repro.websearch`, :mod:`repro.regex` — the from-scratch substrates;
- :mod:`repro.suite` — the 7 Sirius Suite compute kernels (Table 4);
- :mod:`repro.platforms` — accelerator specs and the calibrated speedup
  model (Tables 3/5/6);
- :mod:`repro.datacenter` — M/M/1 queueing, the Google-style TCO model, and
  the design-space search (Table 7-9, Figures 16-21);
- :mod:`repro.analysis` — cycle breakdowns, bottleneck model, variability.

Quickstart::

    from repro import SiriusPipeline, InputSet
    pipeline = SiriusPipeline.build()
    for query in InputSet.build().all_queries:
        print(pipeline.process(query).summary())
"""

from repro.core import (
    InputSet,
    IPAQuery,
    QueryType,
    SiriusPipeline,
    SiriusResponse,
)
from repro.errors import SiriusError
from repro.profiling import Profile, Profiler

__version__ = "1.0.0"

__all__ = [
    "InputSet",
    "IPAQuery",
    "Profile",
    "Profiler",
    "QueryType",
    "SiriusError",
    "SiriusPipeline",
    "SiriusResponse",
    "__version__",
]
