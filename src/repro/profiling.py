"""Component-level wall-time profiler (the VTune stand-in).

Services wrap their algorithmic components in ``profiler.section(name)``;
the recorded per-component times drive the cycle-breakdown analysis (Figure
9) and the QA hot-component breakdown (Figure 8b).  Sections nest; time is
attributed to the innermost open section only, so component times sum to
(at most) total time without double counting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.errors import ProfilerError
from repro.obs.context import current_tracer


@dataclass
class Profile:
    """Accumulated exclusive seconds per component name."""

    seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, name: str) -> float:
        total = self.total
        if total <= 0:
            return 0.0
        return self.seconds.get(name, 0.0) / total

    def breakdown(self) -> Dict[str, float]:
        """Component → fraction of total, descending."""
        total = self.total
        if total <= 0:
            return {}
        items = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        return {name: value / total for name, value in items}

    def merge(self, other: "Profile") -> None:
        for name, value in other.seconds.items():
            self.add(name, value)


class Profiler:
    """Nestable section timer.

    >>> profiler = Profiler()
    >>> with profiler.section("outer"):
    ...     with profiler.section("inner"):
    ...         pass
    >>> set(profiler.profile.seconds) == {"outer", "inner"}
    True
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._stack: List[str] = []
        self._entered_at: List[float] = []
        #: Thread that opened the current outermost section (only meaningful
        #: while sections are open; rebound on the next outermost entry).
        self._owner: int = 0
        self.profile = Profile()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        thread = threading.get_ident()
        if self._stack:
            if thread != self._owner:
                # The shared _stack/_entered_at would interleave two threads'
                # sections and silently mis-attribute time; the executor gives
                # every concurrent branch its own Profiler precisely to avoid
                # this, so crossing threads here is always a caller bug.
                raise ProfilerError(
                    f"Profiler.section({name!r}) entered from a different "
                    f"thread while section {self._stack[-1]!r} is open; "
                    "concurrent work needs its own Profiler per thread"
                )
        else:
            self._owner = thread
        # A section inside an active trace is also a leaf span (the
        # per-component timings of Figure 9, visible in the waterfall).
        tracer = current_tracer()
        span = None
        if tracer is not None and tracer.current_span() is not None:
            span = tracer.begin_span(name, kind="section")
        start = self._clock()
        # Charge the parent for time spent so far, then suspend it.
        if self._stack:
            self.profile.add(self._stack[-1], start - self._entered_at[-1])
        self._stack.append(name)
        self._entered_at.append(start)
        try:
            yield
        finally:
            end = self._clock()
            self.profile.add(name, end - self._entered_at[-1])
            self._stack.pop()
            self._entered_at.pop()
            # Resume the parent's clock.
            if self._stack:
                self._entered_at[-1] = end
            if span is not None:
                tracer.end_span(span)

    def reset(self) -> Profile:
        """Return the collected profile and start a fresh one.

        Resetting while sections are open is an error: the open
        ``section()`` exits would charge time begun *before* the reset to
        the fresh profile (and pop a stack the reset no longer owns), so
        the misuse raises instead of silently mis-attributing.
        """
        if self._stack:
            raise ProfilerError(
                "Profiler.reset() called while sections are still open: "
                + " > ".join(self._stack)
            )
        collected = self.profile
        self.profile = Profile()
        return collected


class NullProfiler(Profiler):
    """A profiler whose sections cost (almost) nothing and record nothing."""

    @contextmanager
    def section(self, name: str) -> Iterator[None]:  # noqa: ARG002
        yield
