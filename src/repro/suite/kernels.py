"""The seven Sirius Suite kernels (paper Table 4).

| Service | Kernel   | Baseline source            | Granularity               |
|---------|----------|----------------------------|---------------------------|
| ASR     | gmm      | repro.asr.gmm              | per HMM state             |
| ASR     | dnn      | repro.asr.dnn              | per matrix multiplication |
| QA      | stemmer  | repro.qa.stemmer           | per word                  |
| QA      | regex    | repro.regex                | per (pattern, sentence)   |
| QA      | crf      | repro.qa.crf               | per sentence              |
| IMM     | fe       | repro.imm.hessian          | per image tile            |
| IMM     | fd       | repro.imm.descriptor       | per keypoint              |

Every baseline hot path carries a :func:`repro.obs.counters.record_work`
hook with an analytic flops/bytes model documented next to its formula
(dense kernels count real multiply-adds over float64 operands; the branchy
string kernels — stemmer, regex — count one op per character examined).
Under a tracer, :meth:`repro.suite.base.Kernel.execute` wraps the run in a
``kernel`` span, so ``repro bench`` records per-kernel counter totals and
``repro trace-report --roofline`` can place each kernel's measured
operational intensity on the :mod:`repro.platforms.roofline` model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.asr.dnn import DeepNeuralNetwork, DNNConfig
from repro.asr.gmm import DiagonalGMM, fit_gmm
from repro.imm.descriptor import describe_keypoints
from repro.imm.hessian import FastHessianDetector, Keypoint
from repro.imm.image import Image, SceneGenerator
from repro.imm.integral import integral_image
from repro.qa.crf import LinearChainCRF, default_model, generate_corpus
from repro.qa.stemmer import stem
from repro.regex.engine import Pattern
from repro.regex.patterns import build_patterns, build_sentences
from repro.suite.base import Kernel
from repro.suite.parallel import map_chunks

# ---------------------------------------------------------------------------
# ASR kernels
# ---------------------------------------------------------------------------


@dataclass
class GMMInputs:
    """A bank of per-HMM-state GMMs plus the frames to score."""

    gmms: List[DiagonalGMM]
    features: np.ndarray


class GMMKernel(Kernel):
    """Acoustic scoring: every HMM state's GMM scores every frame."""

    name = "gmm"
    service = "ASR"
    granularity = "for each HMM state"

    def prepare(self, scale: float = 1.0) -> GMMInputs:
        rng = np.random.default_rng(7)
        n_states = max(int(32 * scale), 2)
        n_frames = max(int(64 * scale), 4)
        dimension = 26
        gmms = []
        for state in range(n_states):
            data = rng.normal(state % 5, 1.0, (64, dimension))
            gmms.append(fit_gmm(data, n_components=4, n_iterations=3, seed=state))
        features = rng.normal(0.0, 2.0, (n_frames, dimension))
        return GMMInputs(gmms, features)

    def run(self, inputs: GMMInputs) -> float:
        total = 0.0
        for gmm in inputs.gmms:
            total += float(gmm.log_likelihood(inputs.features).sum())
        return total

    def run_parallel(self, inputs: GMMInputs, workers: int) -> float:
        def work(gmms: Sequence[DiagonalGMM]) -> float:
            return sum(float(g.log_likelihood(inputs.features).sum()) for g in gmms)

        return sum(map_chunks(work, inputs.gmms, workers))

    def subset(self, inputs: GMMInputs, chunk: range) -> GMMInputs:
        return GMMInputs(inputs.gmms[chunk.start : chunk.stop], inputs.features)

    def count_items(self, inputs: GMMInputs) -> int:
        return len(inputs.gmms)


@dataclass
class DNNInputs:
    network: DeepNeuralNetwork
    batches: List[np.ndarray]  # pre-stacked input batches


class DNNKernel(Kernel):
    """Forward passes through the acoustic DNN, one batch per work item."""

    name = "dnn"
    service = "ASR"
    granularity = "for each matrix multiplication"

    def prepare(self, scale: float = 1.0) -> DNNInputs:
        rng = np.random.default_rng(11)
        config = DNNConfig(input_dim=26, n_classes=99, hidden_sizes=(256, 256), context=2)
        network = DeepNeuralNetwork(config)
        n_batches = max(int(16 * scale), 2)
        batches = [
            rng.normal(size=(32, config.stacked_dim)) for _ in range(n_batches)
        ]
        return DNNInputs(network, batches)

    def run(self, inputs: DNNInputs) -> float:
        return sum(float(inputs.network.forward(batch).sum()) for batch in inputs.batches)

    def run_parallel(self, inputs: DNNInputs, workers: int) -> float:
        def work(batches: Sequence[np.ndarray]) -> float:
            return sum(float(inputs.network.forward(b).sum()) for b in batches)

        return sum(map_chunks(work, inputs.batches, workers))

    def subset(self, inputs: DNNInputs, chunk: range) -> DNNInputs:
        return DNNInputs(inputs.network, inputs.batches[chunk.start : chunk.stop])

    def count_items(self, inputs: DNNInputs) -> int:
        return len(inputs.batches)


# ---------------------------------------------------------------------------
# QA kernels
# ---------------------------------------------------------------------------

_WORD_STEMS = [
    "nation", "relate", "operate", "conform", "hope", "adjust", "depend",
    "active", "sense", "form", "decide", "triplicate", "electric", "motor",
    "feudal", "radical",
]
_SUFFIXES = ["al", "ance", "ation", "izer", "alism", "iveness", "fulness",
             "ousli", "ement", "iviti", "ing", "ed", "s", "es", "ness", ""]


def build_word_list(count: int, seed: int = 3) -> List[str]:
    """Deterministic word list in the spirit of Table 4's 4M-word input."""
    rng = random.Random(seed)
    return [
        rng.choice(_WORD_STEMS) + rng.choice(_SUFFIXES) for _ in range(count)
    ]


class StemmerKernel(Kernel):
    """Porter-stem a word list, one word per work item."""

    name = "stemmer"
    service = "QA"
    granularity = "for each individual word"

    #: Default word count; Table 4 uses 4M, scaled down for Python runtimes.
    base_words = 20_000

    def prepare(self, scale: float = 1.0) -> List[str]:
        return build_word_list(max(int(self.base_words * scale), 10))

    def run(self, inputs: List[str]) -> float:
        return float(sum(len(stem(word)) for word in inputs))

    def run_parallel(self, inputs: List[str], workers: int) -> float:
        def work(words: Sequence[str]) -> float:
            return float(sum(len(stem(word)) for word in words))

        return sum(map_chunks(work, inputs, workers))

    def subset(self, inputs: List[str], chunk: range) -> List[str]:
        return inputs[chunk.start : chunk.stop]

    def count_items(self, inputs: List[str]) -> int:
        return len(inputs)


@dataclass
class RegexInputs:
    patterns: List[Pattern]
    sentences: List[str]
    pairs: List[Tuple[int, int]]


class RegexKernel(Kernel):
    """Match 100 expressions against 400 sentences (Table 4's input set)."""

    name = "regex"
    service = "QA"
    granularity = "for each regex-sentence pair"

    def prepare(self, scale: float = 1.0) -> RegexInputs:
        n_patterns = max(int(100 * min(scale, 1.0)), 5)
        n_sentences = max(int(400 * scale), 10)
        patterns = build_patterns(n_patterns)
        sentences = build_sentences(n_sentences)
        pairs = [(p, s) for p in range(n_patterns) for s in range(n_sentences)]
        return RegexInputs(patterns, sentences, pairs)

    def run(self, inputs: RegexInputs) -> float:
        hits = 0
        for pattern_index, sentence_index in inputs.pairs:
            if inputs.patterns[pattern_index].test(inputs.sentences[sentence_index]):
                hits += 1
        return float(hits)

    def run_parallel(self, inputs: RegexInputs, workers: int) -> float:
        def work(pairs: Sequence[Tuple[int, int]]) -> float:
            return float(
                sum(
                    1
                    for p, s in pairs
                    if inputs.patterns[p].test(inputs.sentences[s])
                )
            )

        return sum(map_chunks(work, inputs.pairs, workers))

    def subset(self, inputs: RegexInputs, chunk: range) -> RegexInputs:
        return RegexInputs(
            inputs.patterns, inputs.sentences, inputs.pairs[chunk.start : chunk.stop]
        )

    def count_items(self, inputs: RegexInputs) -> int:
        return len(inputs.pairs)


@dataclass
class CRFInputs:
    model: LinearChainCRF
    sentences: List[Tuple[str, ...]]


class CRFKernel(Kernel):
    """CRF Viterbi decoding, one sentence per work item (CoNLL-style)."""

    name = "crf"
    service = "QA"
    granularity = "for each sentence"

    def prepare(self, scale: float = 1.0) -> CRFInputs:
        n_sentences = max(int(200 * scale), 5)
        corpus = generate_corpus(n_sentences, seed=21)
        return CRFInputs(default_model(), [s.tokens for s in corpus])

    def run(self, inputs: CRFInputs) -> float:
        return float(
            sum(len(inputs.model.decode(tokens)) for tokens in inputs.sentences)
        )

    def run_parallel(self, inputs: CRFInputs, workers: int) -> float:
        def work(sentences: Sequence[Tuple[str, ...]]) -> float:
            return float(sum(len(inputs.model.decode(t)) for t in sentences))

        return sum(map_chunks(work, inputs.sentences, workers))

    def subset(self, inputs: CRFInputs, chunk: range) -> CRFInputs:
        return CRFInputs(inputs.model, inputs.sentences[chunk.start : chunk.stop])

    def count_items(self, inputs: CRFInputs) -> int:
        return len(inputs.sentences)


# ---------------------------------------------------------------------------
# IMM kernels
# ---------------------------------------------------------------------------


@dataclass
class FEInputs:
    tiles: List[Image]
    detector: FastHessianDetector


class FEKernel(Kernel):
    """SURF feature extraction over image tiles (the paper's tiled port)."""

    name = "fe"
    service = "IMM"
    granularity = "for each image tile"

    def prepare(self, scale: float = 1.0) -> FEInputs:
        side = max(int(128 * np.sqrt(scale)), 64)
        generator = SceneGenerator(height=side, width=side, seed=13)
        n_images = max(int(2 * scale), 1)
        tiles: List[Image] = []
        for index in range(n_images):
            tiles.extend(t for _, _, t in generator.scene(index).tiles(64))
        return FEInputs(tiles, FastHessianDetector())

    def run(self, inputs: FEInputs) -> float:
        return float(
            sum(len(inputs.detector.detect(tile)) for tile in inputs.tiles)
        )

    def run_parallel(self, inputs: FEInputs, workers: int) -> float:
        def work(tiles: Sequence[Image]) -> float:
            return float(sum(len(inputs.detector.detect(t)) for t in tiles))

        return sum(map_chunks(work, inputs.tiles, workers))

    def subset(self, inputs: FEInputs, chunk: range) -> FEInputs:
        return FEInputs(inputs.tiles[chunk.start : chunk.stop], inputs.detector)

    def count_items(self, inputs: FEInputs) -> int:
        return len(inputs.tiles)


@dataclass
class FDInputs:
    ii: np.ndarray
    image: Image
    keypoints: List[Keypoint]


class FDKernel(Kernel):
    """SURF feature description, one keypoint per work item."""

    name = "fd"
    service = "IMM"
    granularity = "for each keypoint"

    def prepare(self, scale: float = 1.0) -> FDInputs:
        generator = SceneGenerator(seed=17)
        image = generator.scene(0)
        detector = FastHessianDetector(threshold=5e-6, max_keypoints=None)
        keypoints = detector.detect(image)
        target = max(int(80 * scale), 4)
        while len(keypoints) < target:
            keypoints = keypoints + keypoints  # repeat work items to scale up
        return FDInputs(integral_image(image.pixels), image, keypoints[:target])

    def run(self, inputs: FDInputs) -> float:
        descriptors = describe_keypoints(
            inputs.image, inputs.keypoints, ii=inputs.ii, upright=False
        )
        return float(np.abs(descriptors).sum())

    def run_parallel(self, inputs: FDInputs, workers: int) -> float:
        def work(keypoints: Sequence[Keypoint]) -> float:
            descriptors = describe_keypoints(
                inputs.image, list(keypoints), ii=inputs.ii, upright=False
            )
            return float(np.abs(descriptors).sum())

        return sum(map_chunks(work, inputs.keypoints, workers))

    def subset(self, inputs: FDInputs, chunk: range) -> FDInputs:
        return FDInputs(inputs.ii, inputs.image, inputs.keypoints[chunk.start : chunk.stop])

    def count_items(self, inputs: FDInputs) -> int:
        return len(inputs.keypoints)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

KERNEL_CLASSES = (
    GMMKernel,
    DNNKernel,
    StemmerKernel,
    RegexKernel,
    CRFKernel,
    FEKernel,
    FDKernel,
)


def all_kernels() -> List[Kernel]:
    """Fresh instances of all seven kernels, Table 4 order."""
    return [cls() for cls in KERNEL_CLASSES]


def kernel_by_name(name: str) -> Kernel:
    for cls in KERNEL_CLASSES:
        if cls.name == name:
            return cls()
    raise KeyError(f"unknown kernel: {name!r}")
