"""Thread-pool helpers for the pthread-analog kernel ports.

"Each thread is responsible for a range of data over a fixed number of
iterations ... synchronizing only at the end of the execution"
(Section 4.3.1).  ``map_chunks`` reproduces exactly that: split the work into
``workers`` contiguous ranges, run each on its own thread, join once.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def chunk_ranges(n_items: int, workers: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``workers`` contiguous ranges."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, max(n_items, 1))
    base = n_items // workers
    remainder = n_items % workers
    ranges = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < remainder else 0)
        if size == 0:
            continue
        ranges.append(range(start, start + size))
        start += size
    return ranges


def map_chunks(
    work: Callable[[Sequence[T]], R],
    items: Sequence[T],
    workers: int,
) -> List[R]:
    """Apply ``work`` to contiguous chunks of ``items`` on a thread pool."""
    ranges = chunk_ranges(len(items), workers)
    if len(ranges) <= 1:
        return [work(items)]
    with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
        futures = [
            pool.submit(work, items[chunk.start : chunk.stop]) for chunk in ranges
        ]
        return [future.result() for future in futures]


def _run_kernel_chunk(payload):
    """Module-level worker for process pools (must be picklable)."""
    kernel, chunk_inputs = payload
    return kernel.run(chunk_inputs)


def run_chunks_in_processes(kernel, chunks: List) -> float:
    """Run ``kernel.run`` over each chunk in its own OS process and sum.

    Uses the ``fork`` start method (Linux) so large read-only inputs are
    shared copy-on-write rather than re-pickled where possible.
    """
    import multiprocessing

    context = multiprocessing.get_context("fork")
    with context.Pool(processes=len(chunks)) as pool:
        partials = pool.map(
            _run_kernel_chunk, [(kernel, chunk) for chunk in chunks]
        )
    return float(sum(partials))
