"""Chunking helpers for the pthread-analog kernel ports.

"Each thread is responsible for a range of data over a fixed number of
iterations ... synchronizing only at the end of the execution"
(Section 4.3.1).  ``map_chunks`` reproduces exactly that: split the work into
``workers`` contiguous ranges, run each concurrently, join once.

The pools themselves live in the shared execution-backend registry
(:mod:`repro.serving.backends`); this module only contributes the Table 4
chunking policy and dispatches the chunks through the ``thread`` /
``process`` backends that the serving layer also uses.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from repro.serving.backends import get_backend

T = TypeVar("T")
R = TypeVar("R")


def chunk_ranges(n_items: int, workers: int) -> List[range]:
    """Split ``range(n_items)`` into at most ``workers`` contiguous ranges."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, max(n_items, 1))
    base = n_items // workers
    remainder = n_items % workers
    ranges = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < remainder else 0)
        if size == 0:
            continue
        ranges.append(range(start, start + size))
        start += size
    return ranges


def map_chunks(
    work: Callable[[Sequence[T]], R],
    items: Sequence[T],
    workers: int,
) -> List[R]:
    """Apply ``work`` to contiguous chunks of ``items`` on the thread backend."""
    ranges = chunk_ranges(len(items), workers)
    if len(ranges) <= 1:
        return [work(items)]
    chunks = [items[chunk.start : chunk.stop] for chunk in ranges]
    return get_backend("thread").map(work, chunks, workers=len(chunks))


def run_chunks_in_processes(kernel, chunks: List) -> float:
    """Run ``kernel.run`` over each chunk in its own OS process and sum.

    The ``process`` backend forks (Linux), so the kernel and its large
    read-only inputs are shared copy-on-write rather than re-pickled.
    """
    partials = get_backend("process").map(kernel.run, chunks, workers=len(chunks))
    return float(sum(partials))
