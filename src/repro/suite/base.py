"""Sirius Suite kernel abstraction (paper Table 4).

Each kernel packages: a representative input-set builder (``prepare``), the
single-threaded baseline (``run``), and a data-parallel port
(``run_parallel``) that divides the input at the granularity listed in
Table 4 — the same structure as the paper's pthread ports.  ``run`` returns
a checksum so ports can be verified against the baseline.

Note on parallel speedup: the pthread-analog ports use a thread pool.  numpy
kernels (GMM, DNN, FE, FD) release the GIL inside vectorized sections and can
scale; pure-Python kernels (Stemmer, Regex, CRF) mirror the port *structure*
but are GIL-bound — accelerator speedups for Table 5 come from the calibrated
platform model (:mod:`repro.platforms`), not from these ports.
"""

from __future__ import annotations

import abc
import contextlib
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.obs.context import current_tracer


@dataclass(frozen=True)
class KernelRun:
    """Outcome of executing a kernel once."""

    kernel: str
    seconds: float
    items: int
    checksum: float
    workers: int = 1

    @property
    def items_per_second(self) -> float:
        """Throughput; 0.0 for a zero-duration run (nothing was measured).

        Returning ``inf`` here poisoned downstream aggregation (means and
        ratios over per-run throughputs became ``inf``/``nan``).
        """
        return self.items / self.seconds if self.seconds > 0 else 0.0


class Kernel(abc.ABC):
    """One Sirius Suite benchmark."""

    #: Kernel short name, e.g. "gmm".
    name: str = ""
    #: Owning service: "ASR", "QA", or "IMM".
    service: str = ""
    #: Table 4 "data granularity" description.
    granularity: str = ""

    @abc.abstractmethod
    def prepare(self, scale: float = 1.0) -> Any:
        """Build the kernel's input set; ``scale`` shrinks/grows it."""

    @abc.abstractmethod
    def run(self, inputs: Any) -> float:
        """Single-threaded baseline; returns a checksum."""

    @abc.abstractmethod
    def run_parallel(self, inputs: Any, workers: int) -> float:
        """Data-parallel port; must produce the same checksum as ``run``."""

    @abc.abstractmethod
    def count_items(self, inputs: Any) -> int:
        """How many granularity units the input contains."""

    @abc.abstractmethod
    def subset(self, inputs: Any, chunk: range) -> Any:
        """The sub-input covering work items ``chunk`` (for process ports)."""

    def run_parallel_processes(self, inputs: Any, workers: int) -> float:
        """Data-parallel port on OS processes (true multicore, no GIL).

        This is the faithful pthread analogue for the pure-Python kernels:
        the input splits into contiguous chunks (via :meth:`subset`), each
        chunk runs ``run`` in a forked worker, and partial checksums sum at
        the end — one synchronization, as in the paper's ports.
        """
        from repro.suite.parallel import chunk_ranges, run_chunks_in_processes

        ranges = chunk_ranges(self.count_items(inputs), workers)
        if len(ranges) <= 1:
            return self.run(inputs)
        chunks = [self.subset(inputs, chunk) for chunk in ranges]
        return run_chunks_in_processes(self, chunks)

    def execute(
        self,
        scale: float = 1.0,
        workers: int = 1,
        inputs: Optional[Any] = None,
        use_processes: bool = False,
    ) -> KernelRun:
        """Prepare (unless given), run, and time the kernel."""
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if inputs is None:
            inputs = self.prepare(scale)
        # With an ambient tracer and an open trace, the run is wrapped in a
        # ``kernel`` span so the hot-path work counters (repro.obs.counters)
        # accumulate on a per-kernel node — this is what `repro bench` and
        # `repro trace-report --roofline` consume.
        tracer = current_tracer()
        span: Any = contextlib.nullcontext()
        if tracer is not None and tracer.current_span() is not None:
            from repro.obs.trace import KERNEL

            span = tracer.span(
                f"kernel:{self.name}",
                kind=KERNEL,
                service=self.service,
                attributes={"kernel": self.name, "workers": workers},
            )
        start = time.perf_counter()
        with span:
            if workers == 1:
                checksum = self.run(inputs)
            elif use_processes:
                checksum = self.run_parallel_processes(inputs, workers)
            else:
                checksum = self.run_parallel(inputs, workers)
        elapsed = time.perf_counter() - start
        return KernelRun(
            kernel=self.name,
            seconds=elapsed,
            items=self.count_items(inputs),
            checksum=float(checksum),
            workers=workers,
        )

    def __repr__(self) -> str:
        return f"<Kernel {self.name} ({self.service})>"
