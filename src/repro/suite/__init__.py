"""Sirius Suite: the seven compute-bottleneck kernels of Table 4."""

from repro.suite.base import Kernel, KernelRun
from repro.suite.kernels import (
    CRFKernel,
    DNNKernel,
    FDKernel,
    FEKernel,
    GMMKernel,
    KERNEL_CLASSES,
    RegexKernel,
    StemmerKernel,
    all_kernels,
    kernel_by_name,
)
from repro.suite.parallel import chunk_ranges, map_chunks

__all__ = [
    "CRFKernel",
    "DNNKernel",
    "FDKernel",
    "FEKernel",
    "GMMKernel",
    "KERNEL_CLASSES",
    "Kernel",
    "KernelRun",
    "RegexKernel",
    "StemmerKernel",
    "all_kernels",
    "chunk_ranges",
    "kernel_by_name",
    "map_chunks",
]
