"""Abstract syntax tree for the regex substrate.

The Sirius QA service uses a lightweight regular-expression library (SLRE in
the paper) to match question words and filter retrieved documents.  This
package is a from-scratch replacement: patterns are parsed into the AST nodes
below, compiled to a Thompson NFA (:mod:`repro.regex.nfa`), and executed by an
NFA simulation (:mod:`repro.regex.engine`) that runs in O(len(pattern) *
len(text)) without backtracking blowup.

Supported syntax: literals, ``.``, escapes (``\\d \\D \\w \\W \\s \\S`` and
escaped metacharacters), character classes ``[a-z0-9]`` / ``[^...]``, anchors
``^`` and ``$``, quantifiers ``* + ?`` and ``{m}``/``{m,}``/``{m,n}``,
alternation ``|``, and grouping ``( ... )`` (non-capturing semantics; the
engine reports the overall match span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Node:
    """Base class for AST nodes."""


@dataclass(frozen=True)
class Literal(Node):
    """Match exactly one character."""

    char: str


@dataclass(frozen=True)
class AnyChar(Node):
    """``.`` — match any character except newline."""


@dataclass(frozen=True)
class CharClass(Node):
    """``[...]`` — a set of ranges, possibly negated.

    ``ranges`` holds inclusive ``(lo, hi)`` codepoint pairs; single characters
    are stored as ``(c, c)``.
    """

    ranges: Tuple[Tuple[int, int], ...]
    negated: bool = False

    def contains(self, char: str) -> bool:
        code = ord(char)
        inside = any(lo <= code <= hi for lo, hi in self.ranges)
        return inside != self.negated


@dataclass(frozen=True)
class Anchor(Node):
    """``^`` (kind='start') or ``$`` (kind='end')."""

    kind: str


@dataclass(frozen=True)
class Concat(Node):
    """Sequence of nodes matched one after another."""

    parts: Tuple[Node, ...]


@dataclass(frozen=True)
class Alternate(Node):
    """``a|b|c`` — ordered alternation."""

    options: Tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    """Quantified node: ``min`` to ``max`` repetitions (``max=None`` = inf)."""

    node: Node
    min: int
    max: int | None  # None means unbounded

    def __post_init__(self) -> None:
        if self.min < 0:
            raise ValueError("Repeat.min must be >= 0")
        if self.max is not None and self.max < self.min:
            raise ValueError("Repeat.max must be >= Repeat.min")


@dataclass(frozen=True)
class Group(Node):
    """Parenthesized subexpression."""

    node: Node
    index: int = 0


#: Predefined escape classes, shared by the parser.
DIGIT_RANGES: Tuple[Tuple[int, int], ...] = ((ord("0"), ord("9")),)
WORD_RANGES: Tuple[Tuple[int, int], ...] = (
    (ord("a"), ord("z")),
    (ord("A"), ord("Z")),
    (ord("0"), ord("9")),
    (ord("_"), ord("_")),
)
SPACE_RANGES: Tuple[Tuple[int, int], ...] = (
    (ord(" "), ord(" ")),
    (ord("\t"), ord("\t")),
    (ord("\n"), ord("\n")),
    (ord("\r"), ord("\r")),
    (ord("\f"), ord("\f")),
    (ord("\v"), ord("\v")),
)
