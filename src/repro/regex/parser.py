"""Recursive-descent parser producing :mod:`repro.regex.ast` trees.

Grammar (roughly PCRE-lite, matching what the Sirius QA filters need)::

    alternation := concat ('|' concat)*
    concat      := repeat*
    repeat      := atom quantifier?
    quantifier  := '*' | '+' | '?' | '{' m (',' n?)? '}'
    atom        := literal | '.' | escape | class | anchor | '(' alternation ')'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    Alternate,
    AnyChar,
    Anchor,
    CharClass,
    Concat,
    DIGIT_RANGES,
    Group,
    Literal,
    Node,
    Repeat,
    SPACE_RANGES,
    WORD_RANGES,
)

_METACHARS = set("\\^$.[]()*+?{}|")

_ESCAPE_CLASSES = {
    "d": (DIGIT_RANGES, False),
    "D": (DIGIT_RANGES, True),
    "w": (WORD_RANGES, False),
    "W": (WORD_RANGES, True),
    "s": (SPACE_RANGES, False),
    "S": (SPACE_RANGES, True),
}

_ESCAPE_LITERALS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}


class _Parser:
    """Single-use parser over one pattern string."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0
        self.group_count = 0

    # -- character stream helpers -------------------------------------------------

    def _peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _next(self) -> str:
        char = self._peek()
        if char is None:
            raise RegexSyntaxError("unexpected end of pattern", self.pattern, self.pos)
        self.pos += 1
        return char

    def _expect(self, char: str) -> None:
        if self._peek() != char:
            raise RegexSyntaxError(f"expected {char!r}", self.pattern, self.pos)
        self.pos += 1

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error("unbalanced ')'")
        return node

    def _alternation(self) -> Node:
        options = [self._concat()]
        while self._peek() == "|":
            self.pos += 1
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return Alternate(tuple(options))

    def _concat(self) -> Node:
        parts: List[Node] = []
        while True:
            char = self._peek()
            if char is None or char in "|)":
                break
            parts.append(self._repeat())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        char = self._peek()
        if char == "*":
            self.pos += 1
            return self._quantified(atom, 0, None)
        if char == "+":
            self.pos += 1
            return self._quantified(atom, 1, None)
        if char == "?":
            self.pos += 1
            return self._quantified(atom, 0, 1)
        if char == "{":
            bounds = self._try_brace_quantifier()
            if bounds is not None:
                return self._quantified(atom, bounds[0], bounds[1])
        return atom

    def _quantified(self, atom: Node, lo: int, hi: Optional[int]) -> Node:
        if isinstance(atom, Anchor):
            raise self._error("quantifier not allowed after anchor")
        if self._peek() in ("*", "+"):
            raise self._error("nested quantifier")
        return Repeat(atom, lo, hi)

    def _try_brace_quantifier(self) -> Optional[Tuple[int, Optional[int]]]:
        """Parse ``{m}``, ``{m,}``, ``{m,n}``; return None for a literal ``{``."""
        start = self.pos
        self.pos += 1  # consume '{'
        digits = self._take_digits()
        if not digits:
            self.pos = start
            return None
        lo = int(digits)
        char = self._peek()
        if char == "}":
            self.pos += 1
            return lo, lo
        if char != ",":
            self.pos = start
            return None
        self.pos += 1
        digits = self._take_digits()
        if self._peek() != "}":
            self.pos = start
            return None
        self.pos += 1
        hi = int(digits) if digits else None
        if hi is not None and hi < lo:
            raise RegexSyntaxError("bad repeat interval", self.pattern, start)
        return lo, hi

    def _take_digits(self) -> str:
        digits = []
        while self._peek() is not None and self._peek().isdigit():
            digits.append(self._next())
        return "".join(digits)

    def _atom(self) -> Node:
        char = self._next()
        if char == "(":
            self.group_count += 1
            index = self.group_count
            node = self._alternation()
            self._expect(")")
            return Group(node, index)
        if char == "[":
            return self._char_class()
        if char == ".":
            return AnyChar()
        if char == "^":
            return Anchor("start")
        if char == "$":
            return Anchor("end")
        if char == "\\":
            return self._escape()
        if char in "*+?":
            raise self._error("quantifier with nothing to repeat")
        return Literal(char)

    def _escape(self) -> Node:
        char = self._next()
        if char in _ESCAPE_CLASSES:
            ranges, negated = _ESCAPE_CLASSES[char]
            return CharClass(ranges, negated)
        if char == "b":
            return Anchor("word")
        if char == "B":
            return Anchor("nonword")
        if char in _ESCAPE_LITERALS:
            return Literal(_ESCAPE_LITERALS[char])
        if char in _METACHARS or not char.isalnum():
            return Literal(char)
        raise self._error(f"unknown escape \\{char}")

    def _char_class(self) -> Node:
        negated = False
        if self._peek() == "^":
            self.pos += 1
            negated = True
        ranges: List[Tuple[int, int]] = []
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise self._error("unterminated character class")
            if char == "]" and not first:
                self.pos += 1
                break
            first = False
            lo = self._class_char(ranges)
            if lo is None:
                continue
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.pos += 1
                hi = self._class_char(ranges)
                if hi is None:
                    raise self._error("bad character range")
                if hi < lo:
                    raise self._error("reversed character range")
                ranges.append((lo, hi))
            else:
                ranges.append((lo, lo))
        if not ranges:
            raise self._error("empty character class")
        return CharClass(tuple(ranges), negated)

    def _class_char(self, ranges: List[Tuple[int, int]]) -> Optional[int]:
        """Return the codepoint of the next class member.

        Escape classes (``\\d`` etc.) are appended to ``ranges`` directly and
        None is returned, since they cannot form one end of a range.
        """
        char = self._next()
        if char != "\\":
            return ord(char)
        escape = self._next()
        if escape in _ESCAPE_CLASSES:
            class_ranges, negated = _ESCAPE_CLASSES[escape]
            if negated:
                raise self._error("negated escape not supported inside class")
            ranges.extend(class_ranges)
            return None
        if escape in _ESCAPE_LITERALS:
            return ord(_ESCAPE_LITERALS[escape])
        return ord(escape)


def parse(pattern: str) -> Node:
    """Parse ``pattern`` into an AST, raising :class:`RegexSyntaxError` on error."""
    return _Parser(pattern).parse()
