"""Input set for the Regex kernel (Table 4: 100 expressions / 400 sentences).

The Sirius QA engine matches a suite of patterns against question text and
retrieved documents: interrogative words, entity shapes (dates, ordinals,
money, capitalized names), and special-character filters.  This module builds
a deterministic 100-pattern set in that spirit, plus a 400-sentence corpus
generator used by the benchmark harness.
"""

from __future__ import annotations

import random
from typing import List

from repro.regex.engine import Pattern

#: Hand-written core patterns modeled on OpenEphyra's question analysis.
_CORE_PATTERNS = [
    r"^(what|where|who|when|why|how|which)\b",
    r"^(is|are|was|were|do|does|did|can|could|will|would)\b",
    r"\b(19|20)\d\d\b",
    r"\b\d+(th|st|nd|rd)\b",
    r"\$\d+(\.\d\d)?",
    r"\b\d+(\.\d+)?%",
    r"\b[A-Z][a-z]+( [A-Z][a-z]+)+\b",
    r"\b(president|capital|author|inventor|founder)\b",
    r"\b(city|country|state|river|mountain|ocean)\b",
    r"[^a-zA-Z0-9 .,?!'-]",
    r"\b(january|february|march|april|may|june|july|august|september|october|november|december)\b",
    r"\b(monday|tuesday|wednesday|thursday|friday|saturday|sunday)\b",
    r"\b\d{1,2}:\d\d(am|pm)?\b",
    r"\bhow (many|much|long|far|old|tall)\b",
    r"\b(open|close[sd]?|closing|opening) (time|hour)s?\b",
    r"\b(set|wake|remind|call|text|play|navigate)\b",
    r"\b[A-Z]{2,}\b",
    r"\b\w+ly\b",
    r"\b(in|on|at|near|by) [A-Z][a-z]+\b",
    r"\?$",
]

_TOPIC_WORDS = [
    "president", "capital", "author", "river", "mountain", "election",
    "restaurant", "museum", "airport", "station", "university", "harbor",
    "festival", "country", "island", "volcano", "senate", "treaty",
    "dynasty", "empire",
]

_SUFFIX_WORDS = ["tion", "ment", "ness", "able", "ing", "ed", "ism", "ous"]


def build_pattern_strings(count: int = 100) -> List[str]:
    """Return ``count`` deterministic pattern strings (default 100, Table 4)."""
    patterns = list(_CORE_PATTERNS)
    topic_index = 0
    suffix_index = 0
    while len(patterns) < count:
        if (len(patterns) - len(_CORE_PATTERNS)) % 2 == 0:
            word = _TOPIC_WORDS[topic_index % len(_TOPIC_WORDS)]
            topic_index += 1
            patterns.append(rf"\b{word}s?\b")
        else:
            suffix = _SUFFIX_WORDS[suffix_index % len(_SUFFIX_WORDS)]
            suffix_index += 1
            patterns.append(rf"\b\w+{suffix}\b")
    return patterns[:count]


def build_patterns(count: int = 100) -> List[Pattern]:
    """Compile the benchmark pattern set."""
    return [Pattern(text) for text in build_pattern_strings(count)]


_SENTENCE_TEMPLATES = [
    "What is the capital of {place}?",
    "Who was elected {ordinal} president of {place}?",
    "The {topic} opened in {year} and closes at {hour}:00pm.",
    "How many {topic}s are there in {place}?",
    "Set my alarm for {hour}am on {day}.",
    "{name} wrote about the {topic} near the {topic2} in {year}.",
    "Is the {topic} in {place} open on {day}?",
    "The budget was ${amount}.{cents} which grew by {pct}% since {year}.",
    "When does this {topic} close?",
    "Navigate to the {topic} at {hour}:{minute}pm.",
]

_PLACES = ["Italy", "Cuba", "France", "Michigan", "Vegas", "Peru", "Kenya", "Norway"]
_NAMES = ["Barack Obama", "Harry Potter", "Ada Lovelace", "Alan Turing", "Grace Hopper"]
_DAYS = ["monday", "tuesday", "friday", "saturday", "sunday"]


def build_sentences(count: int = 400, seed: int = 2015) -> List[str]:
    """Generate ``count`` deterministic sentences mixing query and document text."""
    rng = random.Random(seed)
    sentences = []
    for index in range(count):
        template = _SENTENCE_TEMPLATES[index % len(_SENTENCE_TEMPLATES)]
        sentences.append(
            template.format(
                place=rng.choice(_PLACES),
                ordinal=f"{rng.randint(1, 45)}th",
                topic=rng.choice(_TOPIC_WORDS),
                topic2=rng.choice(_TOPIC_WORDS),
                year=rng.randint(1900, 2015),
                hour=rng.randint(1, 12),
                minute=f"{rng.randint(0, 59):02d}",
                day=rng.choice(_DAYS),
                name=rng.choice(_NAMES),
                amount=rng.randint(10, 9999),
                cents=f"{rng.randint(0, 99):02d}",
                pct=rng.randint(1, 99),
            )
        )
    return sentences


def match_all(patterns: List[Pattern], sentences: List[str]) -> int:
    """Run every pattern over every sentence (the paper's per-pair granularity).

    Returns the total number of pattern-sentence pairs that matched, which the
    benchmark uses as a checksum.
    """
    hits = 0
    for pattern in patterns:
        for sentence in sentences:
            if pattern.test(sentence):
                hits += 1
    return hits
