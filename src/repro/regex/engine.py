"""NFA simulation engine with a ``re``-like convenience API.

Semantics are leftmost-longest: :meth:`Pattern.search` returns the match that
starts earliest and, among those, extends furthest.  The simulation advances a
set of NFA states per input character, so runtime is O(states * len(text)) per
start position with no backtracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

from repro.obs.counters import record_work
from repro.regex.nfa import (
    ANCHOR_END,
    ANCHOR_NONWORD,
    ANCHOR_START,
    ANCHOR_WORD,
    EPSILON,
    NFA,
    State,
    compile_nfa,
)
from repro.regex.parser import parse


def _is_word_char(char: str) -> bool:
    return char.isalnum() or char == "_"


def _at_word_boundary(text: str, pos: int) -> bool:
    before = pos > 0 and _is_word_char(text[pos - 1])
    after = pos < len(text) and _is_word_char(text[pos])
    return before != after


@dataclass(frozen=True)
class Match:
    """A successful match: the span [start, end) and the matched text."""

    start: int
    end: int
    text: str

    def group(self) -> str:
        return self.text[self.start : self.end]

    def span(self) -> tuple:
        return (self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


class Pattern:
    """A compiled regular expression.

    >>> Pattern(r"w(ha|he)[rnt]e?").search("somewhere").group()
    'where'
    """

    def __init__(self, pattern: str):
        self.pattern = pattern
        self._nfa: NFA = compile_nfa(parse(pattern))

    @property
    def state_count(self) -> int:
        """Number of NFA states (proportional to pattern length)."""
        return self._nfa.size

    # -- core simulation ------------------------------------------------------

    def _closure(self, states: Set[State], pos: int, text: str) -> Set[State]:
        """Epsilon-closure of ``states``, honouring anchors at position ``pos``."""
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for transition in state.transitions:
                passable = (
                    transition.kind == EPSILON
                    or (transition.kind == ANCHOR_START and pos == 0)
                    or (transition.kind == ANCHOR_END and pos == len(text))
                    or (transition.kind == ANCHOR_WORD and _at_word_boundary(text, pos))
                    or (transition.kind == ANCHOR_NONWORD and not _at_word_boundary(text, pos))
                )
                if passable and transition.target is not None and transition.target not in closed:
                    closed.add(transition.target)
                    stack.append(transition.target)
        return closed

    def _match_end(self, text: str, start: int) -> Optional[int]:
        """Longest match end for a match beginning exactly at ``start``."""
        length = len(text)
        current = self._closure({self._nfa.start}, start, text)
        best: Optional[int] = None
        pos = start
        while True:
            if any(state.accepting for state in current):
                best = pos
            if pos >= length or not current:
                break
            char = text[pos]
            advanced: Set[State] = set()
            for state in current:
                for transition in state.transitions:
                    if transition.consumes() and transition.matches(char):
                        advanced.add(transition.target)
            pos += 1
            if not advanced:
                break
            current = self._closure(advanced, pos, text)
        # Counter model (branchy string kernel): the NFA simulation does
        # O(state_count) transition tests per position examined — one "op"
        # per (position, state) pair; bytes are the 1-byte characters read.
        # Items stay 0 here: the Table 4 granularity unit is one
        # (pattern, sentence) *search*, recorded in :meth:`search`.
        examined = pos - start + 1
        record_work(flops=examined * self._nfa.size, mem_bytes=examined)
        return best

    # -- public API -----------------------------------------------------------

    def match(self, text: str, pos: int = 0) -> Optional[Match]:
        """Match anchored at ``pos``; returns the longest such match or None."""
        end = self._match_end(text, pos)
        if end is None:
            return None
        return Match(pos, end, text)

    def fullmatch(self, text: str) -> Optional[Match]:
        """Match that must consume the entire text."""
        end = self._match_end(text, 0)
        if end == len(text):
            return Match(0, end, text)
        # The greedy scan above returns the longest match; if a shorter full
        # match exists it would also have been reachable, so longest == full
        # whenever any full match exists.  A longest match shorter than the
        # text means no full match.
        return None

    def search(self, text: str, pos: int = 0) -> Optional[Match]:
        """Leftmost-longest match anywhere at or after ``pos``."""
        # One (pattern, text) search is the regex kernel's work item.
        record_work(items=1)
        for start in range(pos, len(text) + 1):
            end = self._match_end(text, start)
            if end is not None:
                return Match(start, end, text)
        return None

    def finditer(self, text: str) -> Iterator[Match]:
        """Non-overlapping leftmost-longest matches, left to right."""
        pos = 0
        length = len(text)
        while pos <= length:
            match = self.search(text, pos)
            if match is None:
                return
            yield match
            # Empty matches must still advance the scan position.
            pos = match.end if match.end > match.start else match.start + 1

    def findall(self, text: str) -> List[str]:
        return [match.group() for match in self.finditer(text)]

    def test(self, text: str) -> bool:
        """True if the pattern matches anywhere in ``text``."""
        return self.search(text) is not None

    def count(self, text: str) -> int:
        """Number of non-overlapping matches in ``text``."""
        return sum(1 for _ in self.finditer(text))

    def __repr__(self) -> str:
        return f"Pattern({self.pattern!r})"


def compile(pattern: str) -> Pattern:  # noqa: A001 - mirrors ``re.compile``
    """Compile ``pattern`` into a reusable :class:`Pattern`."""
    return Pattern(pattern)


def search(pattern: str, text: str) -> Optional[Match]:
    return Pattern(pattern).search(text)


def findall(pattern: str, text: str) -> List[str]:
    return Pattern(pattern).findall(text)
