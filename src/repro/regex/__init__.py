"""From-scratch regular-expression substrate (SLRE replacement).

Public API::

    from repro.regex import Pattern, compile, search, findall

See :mod:`repro.regex.ast` for the supported syntax.
"""

from repro.regex.dfa import DfaPattern
from repro.regex.engine import Match, Pattern, compile, findall, search
from repro.regex.patterns import build_patterns, build_pattern_strings, build_sentences

__all__ = [
    "DfaPattern",
    "Match",
    "Pattern",
    "compile",
    "findall",
    "search",
    "build_patterns",
    "build_pattern_strings",
    "build_sentences",
]
