"""Lazy DFA execution for the regex substrate (RE2-style subset construction).

The NFA simulation (:mod:`repro.regex.engine`) recomputes state sets per
character; for repeated matching over large inputs (the QA document filters
scan every sentence with every pattern) a DFA memoizes those sets, giving
amortized O(1) work per character.

Zero-width assertions (``^``, ``$``, ``\\b``, ``\\B``) are position-context
dependent, so the machine's transition key includes the context: whether the
scan is at the start and whether the previous character was a word
character.  The look-ahead side of a boundary is resolved at transition time,
when the next character is known — the same trick production lazy-DFA
engines use.

Scope: :class:`DfaPattern` accelerates the boolean containment test — the
dominant regex operation in the Sirius QA filters.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.regex.engine import Pattern, _is_word_char
from repro.regex.nfa import (
    ANCHOR_END,
    ANCHOR_NONWORD,
    ANCHOR_START,
    ANCHOR_WORD,
    EPSILON,
    State,
)


class DfaPattern:
    """A pattern compiled for fast repeated containment tests.

    >>> DfaPattern(r"\\b(19|20)\\d\\d\\b").test("founded in 1969, rebuilt later")
    True
    """

    def __init__(self, pattern: str):
        self._pattern = Pattern(pattern)
        self._nfa = self._pattern._nfa
        self._set_ids: Dict[FrozenSet[State], int] = {}
        self._sets: List[FrozenSet[State]] = []
        # (set_id, at_start, prev_word, char) -> (next_set_id, accepted)
        self._transitions: Dict[Tuple[int, bool, bool, str], Tuple[int, bool]] = {}
        # (set_id, at_start, prev_word) -> accepted at end of input
        self._end_accepts: Dict[Tuple[int, bool, bool], bool] = {}
        self._initial_id = self._intern(frozenset({self._nfa.start}))

    @property
    def pattern(self) -> str:
        return self._pattern.pattern

    @property
    def dfa_size(self) -> int:
        """Distinct raw state sets materialized so far (grows lazily)."""
        return len(self._sets)

    # -- internals --------------------------------------------------------------

    def _intern(self, state_set: FrozenSet[State]) -> int:
        existing = self._set_ids.get(state_set)
        if existing is not None:
            return existing
        new_id = len(self._sets)
        self._set_ids[state_set] = new_id
        self._sets.append(state_set)
        return new_id

    def _closure(
        self,
        states: Set[State],
        at_start: bool,
        at_boundary: bool,
        at_end: bool,
    ) -> Set[State]:
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for transition in state.transitions:
                passable = (
                    transition.kind == EPSILON
                    or (transition.kind == ANCHOR_START and at_start)
                    or (transition.kind == ANCHOR_END and at_end)
                    or (transition.kind == ANCHOR_WORD and at_boundary)
                    or (transition.kind == ANCHOR_NONWORD and not at_boundary)
                )
                if passable and transition.target is not None and transition.target not in closed:
                    closed.add(transition.target)
                    stack.append(transition.target)
        return closed

    def _step(
        self, set_id: int, at_start: bool, prev_word: bool, char: str
    ) -> Tuple[int, bool]:
        key = (set_id, at_start, prev_word, char)
        cached = self._transitions.get(key)
        if cached is not None:
            return cached
        char_is_word = _is_word_char(char)
        boundary = prev_word != char_is_word
        # Containment semantics: a new match may start at this position too.
        raw = set(self._sets[set_id])
        raw.add(self._nfa.start)
        closed = self._closure(raw, at_start, boundary, at_end=False)
        accepted = any(state.accepting for state in closed)
        moved: Set[State] = set()
        for state in closed:
            for transition in state.transitions:
                if transition.consumes() and transition.matches(char):
                    moved.add(transition.target)
        result = (self._intern(frozenset(moved)), accepted)
        self._transitions[key] = result
        return result

    def _accepts_at_end(self, set_id: int, at_start: bool, prev_word: bool) -> bool:
        key = (set_id, at_start, prev_word)
        cached = self._end_accepts.get(key)
        if cached is not None:
            return cached
        raw = set(self._sets[set_id])
        raw.add(self._nfa.start)
        closed = self._closure(raw, at_start, at_boundary=prev_word, at_end=True)
        accepted = any(state.accepting for state in closed)
        self._end_accepts[key] = accepted
        return accepted

    # -- public API ---------------------------------------------------------------

    def test(self, text: str) -> bool:
        """True if the pattern matches anywhere in ``text``."""
        set_id = self._initial_id
        at_start = True
        prev_word = False
        for char in text:
            set_id, accepted = self._step(set_id, at_start, prev_word, char)
            if accepted:
                return True
            at_start = False
            prev_word = _is_word_char(char)
        return self._accepts_at_end(set_id, at_start, prev_word)

    def count_matching(self, texts) -> int:
        """How many of ``texts`` contain a match (QA filter inner loop)."""
        return sum(1 for text in texts if self.test(text))

    def __repr__(self) -> str:
        return f"DfaPattern({self.pattern!r}, states={self.dfa_size})"
