"""Thompson NFA construction from regex ASTs.

Each AST node compiles to a fragment with one start state and a set of
dangling out-arrows; fragments are patched together exactly as in Thompson's
construction (Ken Thompson, CACM 1968).  The resulting automaton has O(n)
states for an n-character pattern and is executed by the simulation in
:mod:`repro.regex.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.regex.ast import (
    Alternate,
    AnyChar,
    Anchor,
    CharClass,
    Concat,
    Group,
    Literal,
    Node,
    Repeat,
)

#: Transition kinds.
EPSILON = "eps"
CHAR = "char"
CLASS = "class"
DOT = "dot"
ANCHOR_START = "start"
ANCHOR_END = "end"
ANCHOR_WORD = "word"
ANCHOR_NONWORD = "nonword"


@dataclass(eq=False)  # identity equality so states are hashable set members
class State:
    """One NFA state; ``transitions`` maps to (kind, payload, target)."""

    index: int
    accepting: bool = False
    transitions: List["Transition"] = field(default_factory=list)


@dataclass
class Transition:
    kind: str
    payload: object  # char for CHAR, CharClass for CLASS, None otherwise
    target: Optional[State] = None

    def consumes(self) -> bool:
        """True if taking this transition consumes one input character."""
        return self.kind in (CHAR, CLASS, DOT)

    def matches(self, char: str) -> bool:
        if self.kind == CHAR:
            return char == self.payload
        if self.kind == DOT:
            return char != "\n"
        if self.kind == CLASS:
            return self.payload.contains(char)
        return False


@dataclass
class Fragment:
    """A partially-built NFA: a start state plus dangling transitions."""

    start: State
    dangling: List[Transition]


class NFA:
    """A compiled automaton: entry state, accept state, and all states."""

    def __init__(self, start: State, accept: State, states: List[State]):
        self.start = start
        self.accept = accept
        self.states = states

    @property
    def size(self) -> int:
        return len(self.states)


class _Builder:
    def __init__(self) -> None:
        self.states: List[State] = []

    def new_state(self) -> State:
        state = State(index=len(self.states))
        self.states.append(state)
        return state

    def compile(self, node: Node) -> NFA:
        fragment = self._compile(node)
        accept = self.new_state()
        accept.accepting = True
        _patch(fragment.dangling, accept)
        return NFA(fragment.start, accept, self.states)

    def _compile(self, node: Node) -> Fragment:
        if isinstance(node, Literal):
            return self._leaf(CHAR, node.char)
        if isinstance(node, AnyChar):
            return self._leaf(DOT, None)
        if isinstance(node, CharClass):
            return self._leaf(CLASS, node)
        if isinstance(node, Anchor):
            kinds = {
                "start": ANCHOR_START,
                "end": ANCHOR_END,
                "word": ANCHOR_WORD,
                "nonword": ANCHOR_NONWORD,
            }
            return self._leaf(kinds[node.kind], None)
        if isinstance(node, Group):
            return self._compile(node.node)
        if isinstance(node, Concat):
            return self._concat(node)
        if isinstance(node, Alternate):
            return self._alternate(node)
        if isinstance(node, Repeat):
            return self._repeat(node)
        raise TypeError(f"unknown AST node: {node!r}")

    def _leaf(self, kind: str, payload: object) -> Fragment:
        state = self.new_state()
        transition = Transition(kind, payload)
        state.transitions.append(transition)
        return Fragment(state, [transition])

    def _concat(self, node: Concat) -> Fragment:
        if not node.parts:
            return self._epsilon_fragment()
        fragment = self._compile(node.parts[0])
        for part in node.parts[1:]:
            nxt = self._compile(part)
            _patch(fragment.dangling, nxt.start)
            fragment = Fragment(fragment.start, nxt.dangling)
        return fragment

    def _alternate(self, node: Alternate) -> Fragment:
        split = self.new_state()
        dangling: List[Transition] = []
        for option in node.options:
            fragment = self._compile(option)
            edge = Transition(EPSILON, None, fragment.start)
            split.transitions.append(edge)
            dangling.extend(fragment.dangling)
        return Fragment(split, dangling)

    def _repeat(self, node: Repeat) -> Fragment:
        # Expand {m,n} into m copies plus (n-m) optionals, or a Kleene tail.
        fragments: List[Fragment] = []
        for _ in range(node.min):
            fragments.append(self._compile(node.node))
        if node.max is None:
            fragments.append(self._star(node.node))
        else:
            for _ in range(node.max - node.min):
                fragments.append(self._optional(node.node))
        if not fragments:
            return self._epsilon_fragment()
        combined = fragments[0]
        for fragment in fragments[1:]:
            _patch(combined.dangling, fragment.start)
            combined = Fragment(combined.start, fragment.dangling)
        return combined

    def _star(self, inner: Node) -> Fragment:
        split = self.new_state()
        fragment = self._compile(inner)
        enter = Transition(EPSILON, None, fragment.start)
        leave = Transition(EPSILON, None)
        split.transitions.append(enter)
        split.transitions.append(leave)
        _patch(fragment.dangling, split)
        return Fragment(split, [leave])

    def _optional(self, inner: Node) -> Fragment:
        split = self.new_state()
        fragment = self._compile(inner)
        enter = Transition(EPSILON, None, fragment.start)
        skip = Transition(EPSILON, None)
        split.transitions.append(enter)
        split.transitions.append(skip)
        return Fragment(split, fragment.dangling + [skip])

    def _epsilon_fragment(self) -> Fragment:
        state = self.new_state()
        transition = Transition(EPSILON, None)
        state.transitions.append(transition)
        return Fragment(state, [transition])


def _patch(dangling: List[Transition], target: State) -> None:
    for transition in dangling:
        transition.target = target


def compile_nfa(node: Node) -> NFA:
    """Compile an AST into a Thompson NFA."""
    return _Builder().compile(node)
