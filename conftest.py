"""Pytest bootstrap: make ``src/`` importable without an installed wheel.

The offline environment has no ``wheel`` package, so ``pip install -e .``
cannot build editable metadata.  Adding ``src`` to ``sys.path`` here gives
tests and benchmarks the same import surface an editable install would.

Also registers the ``--statcheck-strict`` flag: the statcheck rule unit
tests and the default full-repo sweep always run, while tests marked
``statcheck_strict`` (baseline burn-down enforcement) run only when the
flag is passed — so rule fixtures can be exercised independently of the
strictest repo-wide policy.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--statcheck-strict",
        action="store_true",
        default=False,
        help="also run strict statcheck policy tests (empty-baseline "
        "enforcement in tests/test_statcheck.py)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--statcheck-strict"):
        return
    skip_strict = pytest.mark.skip(
        reason="strict statcheck policy checks need --statcheck-strict"
    )
    for item in items:
        if "statcheck_strict" in item.keywords:
            item.add_marker(skip_strict)
