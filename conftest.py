"""Pytest bootstrap: make ``src/`` importable without an installed wheel.

The offline environment has no ``wheel`` package, so ``pip install -e .``
cannot build editable metadata.  Adding ``src`` to ``sys.path`` here gives
tests and benchmarks the same import surface an editable install would.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
